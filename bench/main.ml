(* Reproduction harness: one section per evaluation result in the paper
   (E1..E7) plus the ablations DESIGN.md calls out (E8..E10).  Each
   section prints the paper's reported numbers next to ours.

   Usage:
     dune exec bench/main.exe             # all experiments
     dune exec bench/main.exe -- E1 E6    # a subset
     dune exec bench/main.exe -- smoke    # everything at tiny scale
     dune exec bench/main.exe -- micro    # Bechamel host-time microbenches
     dune exec bench/main.exe -- all micro

   Absolute numbers come from the simulator's calibrated cost model
   (lib/ksim/cost_model.ml); the claims under reproduction are the
   *shapes*: who wins, by what rough factor, and the orderings. *)

let pf = Printf.printf

let sec cycles = Ksim.Sim_clock.cycles_to_seconds cycles

let header id title paper =
  pf "\n=== %s: %s ===\n    paper: %s\n" id title paper

let pct_faster base new_ = 100. *. (1. -. (float_of_int new_ /. float_of_int base))
let pct_over base new_ = 100. *. ((float_of_int new_ /. float_of_int base) -. 1.)
let ratio base new_ = float_of_int new_ /. float_of_int (max 1 base)

(* "smoke" runs every experiment at ~1/20 scale so `make check` exercises
   the whole harness in seconds.  [sc] shrinks iteration counts; sweeps
   over lists pick a short list explicitly. *)
let smoke = ref false
let sc n = if !smoke then max 1 (n / 20) else n

(* Experiments can attach structured result rows (e.g. E13's per-ncpus
   sweep) that land in BENCH_kstats.json under their "rows" key. *)
let extra_rows : (string, string list ref) Hashtbl.t = Hashtbl.create 4

let add_row xid json =
  match Hashtbl.find_opt extra_rows xid with
  | Some r -> r := json :: !r
  | None -> Hashtbl.add extra_rows xid (ref [ json ])

let find_counter stats name =
  match Kstats.find stats name with Some (Kstats.Counter_v v) -> v | _ -> 0

(* ----------------------------------------------------------------- E1 *)

let e1 () =
  header "E1" "readdirplus vs readdir+stat (system-call consolidation)"
    "elapsed -60.6..63.8%, system -55.7..59.3%, user -82.8..84.0%, \
     consistent from 10 to 100,000 files";
  pf "%8s %12s %12s %10s %10s %10s\n" "files" "plain(s)" "rdplus(s)"
    "elapsed%" "system%" "user%";
  List.iter
    (fun n ->
      let plain =
        let t = Core.boot_with Core.Config.default in
        Workloads.Lsdir.setup (Core.sys t) ~dir:"/big" ~n;
        Workloads.Lsdir.run_plain (Core.sys t) ~dir:"/big"
      in
      let merged =
        let t = Core.boot_with Core.Config.default in
        Workloads.Lsdir.setup (Core.sys t) ~dir:"/big" ~n;
        Workloads.Lsdir.run_readdirplus (Core.sys t) ~dir:"/big"
      in
      let p = plain.Workloads.Lsdir.times and m = merged.Workloads.Lsdir.times in
      pf "%8d %12.6f %12.6f %9.1f%% %9.1f%% %9.1f%%\n" n
        (sec p.Ksim.Kernel.elapsed) (sec m.Ksim.Kernel.elapsed)
        (pct_faster p.Ksim.Kernel.elapsed m.Ksim.Kernel.elapsed)
        (pct_faster p.Ksim.Kernel.stime m.Ksim.Kernel.stime)
        (pct_faster p.Ksim.Kernel.utime m.Ksim.Kernel.utime))
    (if !smoke then [ 10; 100 ] else [ 10; 100; 1_000; 10_000; 100_000 ])

(* ----------------------------------------------------------------- E2 *)

let e2 () =
  header "E2" "interactive-workload savings estimate"
    "171,975 -> 17,251 syscalls; 51,807,520 -> 32,250,041 bytes; ~28.15 s/hour";
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  Workloads.Interactive.setup sys;
  let rec_ = Core.trace t in
  (* a longer session than the smoke tests: the paper logged ~15 min *)
  let cfg = { Workloads.Interactive.default_config with duration_events = sc 3_000 } in
  let s = Workloads.Interactive.run ~config:cfg sys in
  let est =
    Ktrace.Savings.estimate
      ~trace_duration_cycles:s.Workloads.Interactive.duration_cycles rec_
  in
  pf "  trace duration     : %.2f simulated seconds (%d user actions)\n"
    (sec s.Workloads.Interactive.duration_cycles) s.Workloads.Interactive.actions;
  pf "  syscalls           : %d -> %d (%.1f%% fewer)\n"
    est.Ktrace.Savings.syscalls_before est.Ktrace.Savings.syscalls_after
    (pct_faster est.Ktrace.Savings.syscalls_before est.Ktrace.Savings.syscalls_after);
  pf "  bytes user<->kernel: %d -> %d (%.1f%% fewer)\n"
    est.Ktrace.Savings.bytes_before est.Ktrace.Savings.bytes_after
    (pct_faster est.Ktrace.Savings.bytes_before est.Ktrace.Savings.bytes_after);
  pf "  estimated saving   : %.2f s/hour\n" est.Ktrace.Savings.seconds_saved_per_hour;
  (* show the mined patterns that justify the new syscalls *)
  let g = Ktrace.Syscall_graph.of_recorder rec_ in
  pf "  heaviest syscall-graph edges:\n";
  List.iteri
    (fun i (s, d, w) ->
      if i < 5 then
        pf "    %-10s -> %-10s %d\n" (Ksyscall.Sysno.to_string s)
          (Ksyscall.Sysno.to_string d) w)
    (Ktrace.Syscall_graph.edges g)

(* ----------------------------------------------------------------- E3 *)

let e3 () =
  header "E3" "Cosy micro-benchmarks (syscall sequences in one compound)"
    "individual system calls sped up by 40-90% for common CPU-bound \
     user applications";
  let iterations = sc 2_000 in
  let nsmall = if !smoke then 10 else 100 in
  pf "%-24s %12s %12s %10s\n" "sequence" "plain(s)" "cosy(s)" "speedup";
  let bench name ?(setup = fun _ -> ()) ~plain ~compound () =
    let t1 = Core.boot_with Core.Config.default in
    setup t1;
    let (), p = Ksim.Kernel.timed (Core.kernel t1) (fun () -> plain t1) in
    let t2 = Core.boot_with Core.Config.default in
    setup t2;
    let exec = Core.cosy t2 in
    let (), c =
      Ksim.Kernel.timed (Core.kernel t2) (fun () ->
          ignore (Cosy.Cosy_exec.submit exec (compound t2)))
    in
    pf "%-24s %12.6f %12.6f %9.1f%%\n" name
      (sec p.Ksim.Kernel.elapsed) (sec c.Ksim.Kernel.elapsed)
      (pct_faster p.Ksim.Kernel.elapsed c.Ksim.Kernel.elapsed)
  in
  (* getpid in a loop: pure boundary-crossing cost *)
  bench "getpid xN"
    ~plain:(fun t ->
      for _ = 1 to iterations do
        ignore (Core.Syscall.sys_getpid (Core.sys t))
      done)
    ~compound:(fun _t ->
      let c = Cosy.Cosy_lib.create () in
      let i = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 0) in
      let top = Cosy.Cosy_lib.next_index c in
      let cond =
        Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot i)
          (Cosy.Cosy_op.Const iterations)
      in
      let jz = Cosy.Cosy_lib.next_index c in
      Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot cond) 0;
      ignore (Cosy.Cosy_lib.syscall c "getpid" []);
      Cosy.Cosy_lib.arith c ~dst:i Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot i)
        (Cosy.Cosy_op.Const 1);
      Cosy.Cosy_lib.jmp c top;
      Cosy.Cosy_lib.patch_jump c ~at:jz ~target:(Cosy.Cosy_lib.next_index c);
      Cosy.Cosy_lib.finish c)
    ();
  (* lseek+read loop over a file *)
  let file_setup t =
    ignore
      (Core.ok
         (Core.Syscall.sys_open_write_close (Core.sys t) ~path:"/seq"
            ~data:(Bytes.make 65536 's') ~flags:Core.o_create))
  in
  bench "lseek+read xN" ~setup:file_setup
    ~plain:(fun t ->
      let fd = Core.ok (Core.Syscall.sys_open (Core.sys t) ~path:"/seq" ~flags:Core.o_rdonly) in
      for k = 0 to (iterations / 2) - 1 do
        ignore
          (Core.ok
             (Core.Syscall.sys_lseek (Core.sys t) ~fd
                ~off:(k * 64 mod 65536) ~whence:Kvfs.Vfs.SEEK_SET));
        ignore (Core.ok (Core.Syscall.sys_read (Core.sys t) ~fd ~len:64))
      done;
      ignore (Core.ok (Core.Syscall.sys_close (Core.sys t) ~fd)))
    ~compound:(fun _t ->
      let c = Cosy.Cosy_lib.create () in
      let buf = Cosy.Cosy_lib.alloc_shared c 64 in
      let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str "/seq"; Cosy.Cosy_op.Const 0 ] in
      let i = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 0) in
      let top = Cosy.Cosy_lib.next_index c in
      let cond =
        Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot i)
          (Cosy.Cosy_op.Const (iterations / 2))
      in
      let jz = Cosy.Cosy_lib.next_index c in
      Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot cond) 0;
      let o1 = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amul (Cosy.Cosy_op.Slot i) (Cosy.Cosy_op.Const 64) in
      let off = Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Amod (Cosy.Cosy_op.Slot o1) (Cosy.Cosy_op.Const 65536) in
      ignore
        (Cosy.Cosy_lib.syscall c "lseek"
           [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Slot off; Cosy.Cosy_op.Const 0 ]);
      ignore
        (Cosy.Cosy_lib.syscall c "read"
           [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 64 ]);
      Cosy.Cosy_lib.arith c ~dst:i Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot i) (Cosy.Cosy_op.Const 1);
      Cosy.Cosy_lib.jmp c top;
      Cosy.Cosy_lib.patch_jump c ~at:jz ~target:(Cosy.Cosy_lib.next_index c);
      ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
      Cosy.Cosy_lib.finish c)
    ();
  (* open-read-close of many small files *)
  let many_setup t =
    ignore (Core.Syscall.sys_mkdir (Core.sys t) ~path:"/m");
    for i = 0 to nsmall - 1 do
      ignore
        (Core.ok
           (Core.Syscall.sys_open_write_close (Core.sys t)
              ~path:(Printf.sprintf "/m/f%02d" i)
              ~data:(Bytes.make 256 'x') ~flags:Core.o_create))
    done
  in
  bench (Printf.sprintf "open-read-close x%d" nsmall) ~setup:many_setup
    ~plain:(fun t ->
      for i = 0 to nsmall - 1 do
        let path = Printf.sprintf "/m/f%02d" i in
        let fd = Core.ok (Core.Syscall.sys_open (Core.sys t) ~path ~flags:Core.o_rdonly) in
        ignore (Core.ok (Core.Syscall.sys_read (Core.sys t) ~fd ~len:256));
        ignore (Core.ok (Core.Syscall.sys_close (Core.sys t) ~fd))
      done)
    ~compound:(fun _t ->
      let c = Cosy.Cosy_lib.create () in
      let buf = Cosy.Cosy_lib.alloc_shared c 256 in
      for i = 0 to nsmall - 1 do
        let path = Printf.sprintf "/m/f%02d" i in
        let fd = Cosy.Cosy_lib.syscall c "open" [ Cosy.Cosy_op.Str path; Cosy.Cosy_op.Const 0 ] in
        ignore
          (Cosy.Cosy_lib.syscall c "read"
             [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 256 ]);
        ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ])
      done;
      Cosy.Cosy_lib.finish c)
    ()

(* ----------------------------------------------------------------- E4 *)

let e4 () =
  header "E4" "Cosy applications (database patterns, static web server)"
    "20-80% speedup for CPU-bound applications with minimal code changes \
     (the sendfile precedent the paper cites reports 92-116%)";
  pf "%-24s %12s %12s %10s\n" "application" "plain(s)" "cosy(s)" "speedup";
  let db_cfg =
    { Workloads.Database.default_config with records = sc 1_000; lookups = sc 2_000 }
  in
  let ws_cfg = { Workloads.Webserver.default_config with requests = sc 500 } in
  let db () =
    let t1 = Core.boot_with Core.Config.default in
    Workloads.Database.setup ~config:db_cfg (Core.sys t1);
    let p = Workloads.Database.run_plain ~config:db_cfg (Core.sys t1) in
    let t2 = Core.boot_with Core.Config.default in
    Workloads.Database.setup ~config:db_cfg (Core.sys t2);
    let c, _ = Workloads.Database.run_cosy ~config:db_cfg (Core.sys t2) in
    pf "%-24s %12.6f %12.6f %9.1f%%\n" "database (rand+seq)"
      (sec p.Workloads.Database.times.Ksim.Kernel.elapsed)
      (sec c.Workloads.Database.times.Ksim.Kernel.elapsed)
      (pct_faster p.Workloads.Database.times.Ksim.Kernel.elapsed
         c.Workloads.Database.times.Ksim.Kernel.elapsed)
  in
  let ws () =
    let t1 = Core.boot_with Core.Config.default in
    Workloads.Webserver.setup ~config:ws_cfg (Core.sys t1);
    let p = Workloads.Webserver.run_plain ~config:ws_cfg (Core.sys t1) in
    let t2 = Core.boot_with Core.Config.default in
    Workloads.Webserver.setup ~config:ws_cfg (Core.sys t2);
    let c, _ = Workloads.Webserver.run_cosy ~config:ws_cfg (Core.sys t2) in
    let t3 = Core.boot_with Core.Config.default in
    Workloads.Webserver.setup ~config:ws_cfg (Core.sys t3);
    let sf = Workloads.Webserver.run_sendfile ~config:ws_cfg (Core.sys t3) in
    pf "%-24s %12.6f %12.6f %9.1f%%\n" "web server (cosy)"
      (sec p.Workloads.Webserver.times.Ksim.Kernel.elapsed)
      (sec c.Workloads.Webserver.times.Ksim.Kernel.elapsed)
      (pct_faster p.Workloads.Webserver.times.Ksim.Kernel.elapsed
         c.Workloads.Webserver.times.Ksim.Kernel.elapsed);
    pf "%-24s %12.6f %12.6f %9.1f%%\n" "web server (sendfile)"
      (sec p.Workloads.Webserver.times.Ksim.Kernel.elapsed)
      (sec sf.Workloads.Webserver.times.Ksim.Kernel.elapsed)
      (pct_faster p.Workloads.Webserver.times.Ksim.Kernel.elapsed
         sf.Workloads.Webserver.times.Ksim.Kernel.elapsed)
  in
  db ();
  ws ();
  (* sensitivity: the win shrinks as records grow (copies amortize) *)
  pf "  record-size sensitivity (database):\n";
  List.iter
    (fun record_size ->
      let cfg = { Workloads.Database.default_config with record_size; lookups = sc 1_000 } in
      let t1 = Core.boot_with Core.Config.default in
      Workloads.Database.setup ~config:cfg (Core.sys t1);
      let p = Workloads.Database.run_plain ~config:cfg (Core.sys t1) in
      let t2 = Core.boot_with Core.Config.default in
      Workloads.Database.setup ~config:cfg (Core.sys t2);
      let c, _ = Workloads.Database.run_cosy ~config:cfg (Core.sys t2) in
      pf "    %6d B records: %5.1f%% faster\n" record_size
        (pct_faster p.Workloads.Database.times.Ksim.Kernel.elapsed
           c.Workloads.Database.times.Ksim.Kernel.elapsed))
    [ 64; 256; 1024; 4096 ]

(* ----------------------------------------------------------------- E5 *)

let e5 () =
  header "E5" "Kefence on Wrapfs (Am-utils build)"
    "+1.4% elapsed; max 2,085 outstanding pages; mean allocation 80 bytes";
  let cfg = { Workloads.Amutils.default_config with source_files = sc 1_000; prime_objects = false } in
  let t1 = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kmalloc } in
  Workloads.Amutils.setup ~config:cfg (Core.sys t1);
  let a = Workloads.Amutils.run ~config:cfg (Core.sys t1) in
  let t2 = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash } in
  Workloads.Amutils.setup ~config:cfg (Core.sys t2);
  let b = Workloads.Amutils.run ~config:cfg (Core.sys t2) in
  pf "  vanilla wrapfs (kmalloc) : %.4f s elapsed\n" (sec a.Workloads.Amutils.times.Ksim.Kernel.elapsed);
  pf "  kefence wrapfs (vmalloc) : %.4f s elapsed\n" (sec b.Workloads.Amutils.times.Ksim.Kernel.elapsed);
  pf "  overhead                 : %.2f%% elapsed (paper: 1.4%%)\n"
    (pct_over a.Workloads.Amutils.times.Ksim.Kernel.elapsed
       b.Workloads.Amutils.times.Ksim.Kernel.elapsed);
  let stats = Ksim.Kalloc.stats (Ksim.Kernel.alloc (Core.kernel t2)) in
  pf "  max outstanding pages    : %d (paper: 2,085)\n" stats.Ksim.Kalloc.pages_high_water;
  pf "  mean allocation size     : %.0f B (paper: 80 B)\n" stats.Ksim.Kalloc.mean_alloc_bytes;
  (match Core.kefence t2 with
  | Some kf -> pf "  overflows detected       : %d (expected: 0)\n" (Kefence.overflows_detected kf)
  | None -> ());
  let tlb = Ksim.Address_space.tlb (Ksim.Kernel.kspace (Core.kernel t2)) in
  let tlb1 = Ksim.Address_space.tlb (Ksim.Kernel.kspace (Core.kernel t1)) in
  pf "  kernel TLB misses        : %d (kmalloc) vs %d (kefence)\n"
    (Ksim.Tlb.misses tlb1) (Ksim.Tlb.misses tlb)

(* ----------------------------------------------------------------- E6 *)

let e6 () =
  header "E6" "event monitoring under PostMark (dcache_lock)"
    "+3.9% dispatcher+ring; +61% polling user logger (no disk); +103% \
     logger writing to disk; system time effectively constant";
  let cfg = { Workloads.Postmark.default_config with files = sc 200; transactions = sc 1_000 } in
  let run ?(mon = `None) () =
    let t = Core.boot_with Core.Config.default in
    let sys = Core.sys t in
    match mon with
    | `None ->
        let s = Workloads.Postmark.run ~config:cfg sys in
        (t, s.Workloads.Postmark.times, 0, 0)
    | `Ring ->
        let d = Core.enable_monitoring t in
        let s = Workloads.Postmark.run ~config:cfg sys in
        Core.disable_monitoring t;
        (t, s.Workloads.Postmark.times, Kmonitor.Dispatcher.events d, 0)
    | `Logger write_to_disk ->
        let d = Core.enable_monitoring t in
        let cd = Kmonitor.Chardev.create (Core.kernel t) d in
        let lib = Kmonitor.Libkernevents.create ~strategy:Kmonitor.Libkernevents.Polling cd in
        let lg = Kmonitor.Disk_logger.create ~write_to_disk (Core.kernel t) lib in
        let cfg = { cfg with Workloads.Postmark.pump = (fun () -> Kmonitor.Disk_logger.pump lg) } in
        let s = Workloads.Postmark.run ~config:cfg sys in
        Kmonitor.Disk_logger.drain lg;
        Core.disable_monitoring t;
        (t, s.Workloads.Postmark.times, Kmonitor.Dispatcher.events d,
         Kmonitor.Disk_logger.records_written lg)
  in
  let tb, base, _, _ = run () in
  let _, ring, ev_ring, _ = run ~mon:`Ring () in
  let _, nolog, _, _ = run ~mon:(`Logger false) () in
  let _, wlog, _, logged = run ~mon:(`Logger true) () in
  let line name (t : Ksim.Kernel.times) extra =
    pf "  %-28s elapsed %9.4f s (%+6.1f%%)  system %9.4f s%s\n" name
      (sec t.Ksim.Kernel.elapsed)
      (pct_over base.Ksim.Kernel.elapsed t.Ksim.Kernel.elapsed)
      (sec t.Ksim.Kernel.stime) extra
  in
  line "vanilla" base "";
  line "dispatcher + ring" ring (Printf.sprintf "  (%d events)" ev_ring);
  line "+ polling logger (no disk)" nolog "";
  line "+ logger writing to disk" wlog (Printf.sprintf "  (%d records)" logged);
  let rate =
    float_of_int ev_ring /. 2. /. sec ring.Ksim.Kernel.elapsed
  in
  pf "  dcache_lock rate: %.0f acquisitions/s of simulated time (paper: 8,805/s)\n" rate;
  let st = Core.stats tb in
  let hits = find_counter st "blockdev.cache_hits" in
  let misses = find_counter st "blockdev.cache_misses" in
  pf "  block cache: %d hits / %d misses (%.1f%% hit rate), %d evictions \
      (second-chance)\n"
    hits misses
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
    (find_counter st "blockdev.evictions")

(* ----------------------------------------------------------------- E7 *)

let e7 () =
  header "E7" "KGCC-compiled journalfs (Reiserfs stand-in)"
    "Am-utils compile: system +33%, elapsed +20%.  PostMark: system x14, \
     elapsed x3";
  let am fs =
    let t = Core.boot_with { Core.Config.default with fs } in
    let cfg = { Workloads.Amutils.default_config with source_files = sc 200 } in
    Workloads.Amutils.setup ~config:cfg (Core.sys t);
    (Workloads.Amutils.run ~config:cfg (Core.sys t)).Workloads.Amutils.times
  in
  let pm fs =
    let t = Core.boot_with { Core.Config.default with fs } in
    let cfg = { Workloads.Postmark.default_config with files = sc 200; transactions = sc 800 } in
    (Workloads.Postmark.run ~config:cfg (Core.sys t)).Workloads.Postmark.times
  in
  let show name (g : Ksim.Kernel.times) (k : Ksim.Kernel.times) =
    pf "  %-18s system %8.4f -> %8.4f s (x%.1f / %+.0f%%)   elapsed %8.4f -> %8.4f s (x%.1f / %+.0f%%)\n"
      name (sec g.Ksim.Kernel.stime) (sec k.Ksim.Kernel.stime)
      (ratio g.Ksim.Kernel.stime k.Ksim.Kernel.stime)
      (pct_over g.Ksim.Kernel.stime k.Ksim.Kernel.stime)
      (sec g.Ksim.Kernel.elapsed) (sec k.Ksim.Kernel.elapsed)
      (ratio g.Ksim.Kernel.elapsed k.Ksim.Kernel.elapsed)
      (pct_over g.Ksim.Kernel.elapsed k.Ksim.Kernel.elapsed)
  in
  show "am-utils compile" (am Core.Journalfs) (am Core.Journalfs_kgcc);
  show "postmark" (pm Core.Journalfs) (pm Core.Journalfs_kgcc);
  (* block-cache eviction policy, at a cache small enough to thrash (the
     memfs default of ~150k blocks never evicts at bench scale): a hot
     set re-read every iteration interleaved with a one-touch scan.
     FIFO ages the hot blocks out; second-chance spares them. *)
  let evict_probe policy =
    let t = Core.boot_with Core.Config.default in
    let bd = Kvfs.Block_dev.create ~cache_blocks:64 ~policy (Core.kernel t) in
    for i = 0 to sc 4_000 - 1 do
      for h = 0 to 7 do Kvfs.Block_dev.read_block bd h done;
      Kvfs.Block_dev.read_block bd (1_000 + i)
    done;
    Kvfs.Block_dev.stats bd
  in
  let hit_rate (st : Kvfs.Block_dev.stats) =
    100. *. float_of_int st.Kvfs.Block_dev.hits
    /. float_of_int (max 1 (st.Kvfs.Block_dev.hits + st.Kvfs.Block_dev.misses))
  in
  let f = evict_probe Kvfs.Block_dev.Fifo in
  let s = evict_probe Kvfs.Block_dev.Second_chance in
  pf "  block-cache eviction (64-block cache, hot set + scan): FIFO %.1f%% \
      hit rate, second-chance %.1f%% (%+.1f pts), evictions %d -> %d\n"
    (hit_rate f) (hit_rate s)
    (hit_rate s -. hit_rate f)
    f.Kvfs.Block_dev.evictions s.Kvfs.Block_dev.evictions

(* ----------------------------------------------------------------- E8 *)

(* a small corpus of kernel-flavoured mini-C for compile-time statistics *)
let corpus =
  [
    ("journalfs", Kvfs.Journalfs.source);
    ( "string-utils",
      {|
int kstrlen(char *s) { int n = 0; while (s[n] != 0) n++; return n; }
int kstrcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && b[i] != 0 && a[i] == b[i]) i++;
  return a[i] - b[i];
}
int khash(char *s, int len) {
  int h = 5381;
  int i;
  for (i = 0; i < len; i++) h = h * 33 + s[i];
  return h;
}
|} );
    ( "inode-ops",
      {|
int inode_update(int *inode, int now) {
  /* repeated field access through the same pointer: the common kernel
     idiom check-CSE exists for */
  int dirty = 0;
  if (inode[2] < now) { inode[2] = now; dirty = dirty + inode[2]; }
  if (inode[3] < inode[2]) { inode[3] = inode[2]; dirty = dirty + inode[3]; }
  inode[4] = inode[4] + 1;
  inode[5] = inode[4] + inode[2] + inode[3];
  return dirty + inode[5] + inode[5] + inode[4];
}
int quota_charge(int *q, int blocks) {
  q[0] = q[0] + blocks;
  q[1] = q[1] + blocks;
  if (q[0] > q[2]) return 0 - (q[0] - q[2]);
  if (q[1] > q[3]) return 0 - (q[1] - q[3]);
  return q[0] + q[1];
}
|} );
    ( "list-walk",
      {|
int sum_table(int *table, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) {
    s = s + table[i] + table[i];    /* repeated access: CSE fodder */
    if (table[i] > 100) s = s - table[i];
  }
  return s;
}
int copy_table(int *dst, int *src, int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = src[i];
  return n;
}
|} );
  ]

let e8 () =
  header "E8" "KGCC compile-time statistics (ablation)"
    "BCC-instrumented code 15-20x larger; check-CSE removes more than \
     half the checks for typical kernel code; splay map nearly optimal \
     under locality";
  pf "%-14s %10s %10s %10s %12s\n" "module" "checks" "CSE-cut" "remaining" "size growth";
  List.iter
    (fun (name, src) ->
      let p = Minic.Parser.parse_program ~file:(name ^ ".c") src in
      let r = Kgcc.Compile.compile ~optimize:true p in
      pf "%-14s %10d %10d %10d %11.1fx\n" name r.Kgcc.Compile.checks_inserted
        r.Kgcc.Compile.checks_removed
        (Kgcc.Compile.checks_remaining r)
        (float_of_int r.Kgcc.Compile.size_after
        /. float_of_int (max 1 r.Kgcc.Compile.size_before)))
    corpus;
  (* splay locality: rotations per lookup, local vs scattered pattern *)
  let splay_probe pattern =
    let t = Kgcc.Splay.create () in
    for i = 0 to 255 do
      Kgcc.Splay.insert t ~base:(i * 64) ~size:64 ~meta:i
    done;
    Kgcc.Splay.reset_stats t;
    for i = 0 to 9_999 do
      let addr = match pattern with
        | `Local -> 4_096 + (i mod 3)
        | `Scattered -> i * 2_654_435 mod (256 * 64)
      in
      ignore (Kgcc.Splay.find_containing t addr)
    done;
    float_of_int (Kgcc.Splay.rotations t) /. 10_000.
  in
  pf "  splay rotations/lookup: %.2f under locality, %.2f scattered\n"
    (splay_probe `Local) (splay_probe `Scattered)

(* ----------------------------------------------------------------- E9 *)

let e9 () =
  header "E9" "dynamic deinstrumentation (ablation of the §3.5 plan)"
    "checks deactivate after executing a sufficient number of times, \
     reclaiming performance for hot paths";
  let hot =
    Printf.sprintf
      {|
int main(void) {
  int a[16];
  int i;
  int s = 0;
  for (i = 0; i < 16; i++) a[i] = i;
  for (i = 0; i < %d; i++) s = s + a[i %% 16];
  return s;
}
|}
      (sc 20_000)
  in
  let run threshold =
    let clock = Ksim.Sim_clock.create () in
    let mem = Ksim.Phys_mem.create ~page_size:4096 in
    let space =
      Ksim.Address_space.create ~name:"e9" ~mem ~clock ~cost:Ksim.Cost_model.default ()
    in
    let interp =
      Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.default
        ~base_vpn:16 ~pages:64
    in
    let instrumented = threshold <> Some (-1) in
    let stats = ref None in
    (if instrumented then begin
       let rt =
         Kgcc.Kgcc_runtime.create ?deinstrument_after:threshold ~clock
           ~cost:Ksim.Cost_model.default ()
       in
       Kgcc.Kgcc_runtime.attach rt interp;
       let p = Minic.Parser.parse_program hot in
       let r = Kgcc.Compile.compile p in
       ignore (Minic.Interp.load_program interp r.Kgcc.Compile.program);
       stats := Some rt
     end
     else ignore (Minic.Interp.parse_and_load interp hot));
    let t0 = Ksim.Sim_clock.now clock in
    ignore (Minic.Interp.run interp "main");
    let cycles = Ksim.Sim_clock.now clock - t0 in
    (cycles, Option.map Kgcc.Kgcc_runtime.stats !stats)
  in
  let baseline, _ = run (Some (-1)) in
  pf "  %-22s %12s %10s %10s %10s\n" "configuration" "cycles" "overhead"
    "executed" "skipped";
  pf "  %-22s %12d %10s %10s %10s\n" "uninstrumented" baseline "-" "-" "-";
  List.iter
    (fun threshold ->
      let cycles, stats = run threshold in
      let executed, skipped =
        match stats with
        | Some s -> (s.Kgcc.Kgcc_runtime.checks_executed, s.Kgcc.Kgcc_runtime.checks_skipped)
        | None -> (0, 0)
      in
      let name =
        match threshold with
        | None -> "checks always on"
        | Some n -> Printf.sprintf "deinstrument after %d" n

      in
      pf "  %-22s %12d %9.0f%% %10d %10d\n" name cycles
        (pct_over baseline cycles) executed skipped)
    [ None; Some 10_000; Some 1_000; Some 100; Some 10 ]

(* ---------------------------------------------------------------- E10 *)

let e10 () =
  header "E10" "Cosy user-function protection modes (ablation)"
    "isolated segment: maximum security but per-call overhead; data-only \
     segment: no additional runtime overhead; heuristic authentication \
     turns checks off after enough safe runs (§2.3-2.4)";
  let user_program = "int work(int x) { int i; int s = 0; for (i = 0; i < 50; i++) s += x; return s; }" in
  let calls = sc 500 in
  let run ~mode ~trust_after =
    let t = Core.boot_with Core.Config.default in
    let exec =
      Core.cosy
        ~policy:{ Cosy.Cosy_safety.mode; watchdog_budget = max_int; trust_after }
        ~user_program t
    in
    let c = Cosy.Cosy_lib.create () in
    let i = Cosy.Cosy_lib.set_fresh c (Cosy.Cosy_op.Const 0) in
    let top = Cosy.Cosy_lib.next_index c in
    let cond =
      Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Alt (Cosy.Cosy_op.Slot i)
        (Cosy.Cosy_op.Const calls)
    in
    let jz = Cosy.Cosy_lib.next_index c in
    Cosy.Cosy_lib.jz c (Cosy.Cosy_op.Slot cond) 0;
    ignore (Cosy.Cosy_lib.call_user c "work" [ Cosy.Cosy_op.Slot i ]);
    Cosy.Cosy_lib.arith c ~dst:i Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Slot i) (Cosy.Cosy_op.Const 1);
    Cosy.Cosy_lib.jmp c top;
    Cosy.Cosy_lib.patch_jump c ~at:jz ~target:(Cosy.Cosy_lib.next_index c);
    let (), times =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          ignore (Cosy.Cosy_exec.submit exec (Cosy.Cosy_lib.finish c)))
    in
    (times.Ksim.Kernel.elapsed, (Cosy.Cosy_exec.stats exec).Cosy.Cosy_exec.segment_loads)
  in
  let trusted, _ = run ~mode:Cosy.Cosy_safety.Trusted ~trust_after:None in
  pf "  %-34s %12s %10s %14s\n" "mode" "cycles" "overhead" "segment loads";
  List.iter
    (fun (name, mode, trust_after) ->
      let cycles, loads = run ~mode ~trust_after in
      pf "  %-34s %12d %9.1f%% %14d\n" name cycles (pct_over trusted cycles) loads)
    [
      ("trusted (no protection)", Cosy.Cosy_safety.Trusted, None);
      ("data-only segment", Cosy.Cosy_safety.Data_segment, None);
      ("isolated segment", Cosy.Cosy_safety.Isolated_segment, None);
      ( "isolated, authenticate after 50",
        Cosy.Cosy_safety.Isolated_segment,
        Some 50 );
    ]

(* ---------------------------------------------------------------- E11 *)

let e11 () =
  header "E11" "cost-model sensitivity (ablation)"
    "the paper's wins are ratios of boundary costs saved; DESIGN.md calls \
     for sweeping them.  Cosy's advantage should grow with the trap cost \
     and shrink toward zero as crossings become free";
  pf "  %14s %18s %18s\n" "trap cost" "database speedup" "lsdir rdplus gain";
  List.iter
    (fun scale ->
      let cost =
        {
          Ksim.Cost_model.default with
          Ksim.Cost_model.syscall_entry =
            Ksim.Cost_model.default.Ksim.Cost_model.syscall_entry * scale / 4;
          syscall_exit =
            Ksim.Cost_model.default.Ksim.Cost_model.syscall_exit * scale / 4;
          user_stub =
            Ksim.Cost_model.default.Ksim.Cost_model.user_stub * scale / 4;
        }
      in
      let config = { Ksim.Kernel.default_config with cost } in
      let dcfg =
        { Workloads.Database.default_config with records = sc 1_000; lookups = sc 2_000 }
      in
      let db =
        let t1 = Core.boot_with { Core.Config.default with kernel = config } in
        Workloads.Database.setup ~config:dcfg (Core.sys t1);
        let p = Workloads.Database.run_plain ~config:dcfg (Core.sys t1) in
        let t2 = Core.boot_with { Core.Config.default with kernel = config } in
        Workloads.Database.setup ~config:dcfg (Core.sys t2);
        let c, _ = Workloads.Database.run_cosy ~config:dcfg (Core.sys t2) in
        pct_faster p.Workloads.Database.times.Ksim.Kernel.elapsed
          c.Workloads.Database.times.Ksim.Kernel.elapsed
      in
      let ls =
        let t1 = Core.boot_with { Core.Config.default with kernel = config } in
        Workloads.Lsdir.setup (Core.sys t1) ~dir:"/d" ~n:(sc 1_000);
        let p = Workloads.Lsdir.run_plain (Core.sys t1) ~dir:"/d" in
        let t2 = Core.boot_with { Core.Config.default with kernel = config } in
        Workloads.Lsdir.setup (Core.sys t2) ~dir:"/d" ~n:(sc 1_000);
        let m = Workloads.Lsdir.run_readdirplus (Core.sys t2) ~dir:"/d" in
        pct_faster p.Workloads.Lsdir.times.Ksim.Kernel.elapsed
          m.Workloads.Lsdir.times.Ksim.Kernel.elapsed
      in
      pf "  %12.2fx %17.1f%% %17.1f%%\n" (float_of_int scale /. 4.) db ls)
    (if !smoke then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16 ])

(* ---------------------------------------------------------------- E12 *)

let e12 () =
  header "E12" "batched submission ring (kring): crossings vs batch size"
    "extends §2 consolidation: a batch of N calls costs 2 boundary \
     crossings (one submit trap, replies reaped from the completion \
     queue) instead of 2N trap halves — the io_uring shape";
  let total = sc 256 in
  let mk_reqs () =
    Ksyscall.Syscall.Mkdir { path = "/r" }
    :: List.init (total - 1) (fun i ->
           Ksyscall.Syscall.Open_write_close
             {
               path = Printf.sprintf "/r/f%03d" (i + 1);
               data = Bytes.make 32 (Char.chr (Char.code 'a' + (i mod 26)));
               flags = Core.o_create;
             })
  in
  (* synchronous baseline: one trap per call *)
  let t_sync = Core.boot_with Core.Config.default in
  let sync_times, sync_crossings =
    let k = Core.kernel t_sync in
    let c0 = Ksim.Kernel.crossings k in
    let (), tm =
      Ksim.Kernel.timed k (fun () ->
          List.iter
            (fun r -> ignore (Core.Syscall.dispatch (Core.sys t_sync) r))
            (mk_reqs ()))
    in
    (tm, Ksim.Kernel.crossings k - c0)
  in
  pf "  %d file ops synchronously: %d crossings, %.6f s\n" total
    sync_crossings (sec sync_times.Ksim.Kernel.elapsed);
  pf "  %8s %10s %9s %12s %9s %14s\n" "batch" "crossings" "vs sync"
    "elapsed(s)" "faster" "saved(kstats)";
  List.iter
    (fun batch ->
      let t = Core.boot_with Core.Config.default in
      let k = Core.kernel t in
      let c0 = Ksim.Kernel.crossings k in
      let ring = Core.ring ~sq_entries:batch t in
      let (), tm =
        Ksim.Kernel.timed k (fun () ->
            ignore (Kring.run_batch ring (mk_reqs ())))
      in
      let crossings = Ksim.Kernel.crossings k - c0 in
      let saved =
        match Kstats.find (Core.stats t) "ring.crossings_saved" with
        | Some (Kstats.Counter_v v) -> v
        | _ -> 0
      in
      pf "  %8d %10d %8.1fx %12.6f %8.1f%% %14d\n" batch crossings
        (float_of_int sync_crossings /. float_of_int (max 1 crossings))
        (sec tm.Ksim.Kernel.elapsed)
        (pct_faster sync_times.Ksim.Kernel.elapsed tm.Ksim.Kernel.elapsed)
        saved)
    [ 1; 4; 8; 32; 128 ]

(* ---------------------------------------------------------------- E13 *)

let e13 () =
  header "E13" "SMP scalability: global dcache_lock vs sharded dcache"
    "no direct number — the paper's monitored dcache_lock (8,805 acq/s, \
     E6) is the canonical contended hot spot; claim under test is the \
     scaling shape once the global lock is split";
  (* a dcache-bound serving workload: small documents of heterogeneous
     size, so path lookups dominate and concurrent instances cannot
     phase-lock around the global dcache_lock (see Webserver.config) *)
  let cfg =
    { Workloads.Webserver.default_config with
      requests = max 50 (sc 300);
      doc_size = 8_192;
      doc_size_spread = 4_096 }
  in
  let sweep = [ 1; 2; 4; 8 ] in
  let modes = [ ("global", 1); ("sharded", 64) ] in
  pf "  %5s %-8s %8s %12s %11s %10s %10s %12s\n" "ncpus" "dcache" "steps"
    "makespan(s)" "steps/s" "lock acq" "contended" "spin cycles";
  let results = Hashtbl.create 8 in
  List.iter
    (fun ncpus ->
      List.iter
        (fun (mode, shards) ->
          let t = Core.boot_with { Core.Config.default with ncpus = Some ncpus; dcache_shards = Some shards } in
          let insts =
            Workloads.Smp.webserver_instances ~config:cfg (Core.sys t) ncpus
          in
          let r = Workloads.Smp.run (Core.sys t) insts in
          let tput =
            float_of_int r.Workloads.Smp.steps /. sec r.Workloads.Smp.makespan
          in
          Hashtbl.replace results (ncpus, mode) (r, tput);
          pf "  %5d %-8s %8d %12.4f %11.0f %10d %9.2f%% %12d\n" ncpus mode
            r.Workloads.Smp.steps
            (sec r.Workloads.Smp.makespan)
            tput r.Workloads.Smp.lock_acquisitions
            (100.
            *. float_of_int r.Workloads.Smp.contended
            /. float_of_int (max 1 r.Workloads.Smp.lock_acquisitions))
            r.Workloads.Smp.spin_cycles;
          add_row "E13"
            (Printf.sprintf
               "{\"ncpus\":%d,\"dcache\":\"%s\",\"steps\":%d,\
                \"makespan_cycles\":%d,\"lock_acquisitions\":%d,\
                \"contended\":%d,\"spin_cycles\":%d}"
               ncpus mode r.Workloads.Smp.steps r.Workloads.Smp.makespan
               r.Workloads.Smp.lock_acquisitions r.Workloads.Smp.contended
               r.Workloads.Smp.spin_cycles))
        modes)
    sweep;
  let tput n m = snd (Hashtbl.find results (n, m)) in
  pf "  speedup vs 1 cpu: ";
  List.iter
    (fun (mode, _) ->
      pf " %s" mode;
      List.iter (fun n -> pf " %d:%.2fx" n (tput n mode /. tput 1 mode)) sweep)
    modes;
  pf "\n";
  pf "  sharded vs global at 8 cpus: %.2fx throughput\n"
    (tput 8 "sharded" /. tput 8 "global");
  let r1, _ = Hashtbl.find results (1, "global") in
  pf "  contended acquisitions at 1 cpu: %d (expect 0: no remote holder \
      can exist)\n"
    r1.Workloads.Smp.contended;
  (* the monitoring story: E6's contention monitor pointed at this
     workload sees the global dcache_lock as the hottest lock *)
  let t = Core.boot_with { Core.Config.default with ncpus = Some 4; dcache_shards = Some 1 } in
  let d = Core.enable_monitoring t in
  let mons = Kmonitor.Monitors.register_standard d in
  let insts = Workloads.Smp.webserver_instances ~config:cfg (Core.sys t) 4 in
  ignore (Workloads.Smp.run (Core.sys t) insts);
  Core.disable_monitoring t;
  let cn = mons.Kmonitor.Monitors.contention in
  pf "  monitored run (4 cpus, global lock): %d contended events seen, %d \
      spin cycles attributed\n"
    cn.Kmonitor.Monitors.cn_events cn.Kmonitor.Monitors.cn_spin_cycles;
  (match Kmonitor.Monitors.hottest_locks cn with
  | (obj, hits, spin) :: _ ->
      pf "  hottest lock: obj=%d with %d contended acquisitions, %d spin \
          cycles\n"
        obj hits spin
  | [] -> pf "  hottest lock: none (no contention observed)\n")

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  header "E14" "C10K serving over knet: crossings and copies per data path"
    "no direct number — §2.2 (consolidation) and §2.3 (shared buffers / \
     zero-copy) applied to a socket workload; claim under test is that \
     sendfile and ring batching beat naive read+send on both boundary \
     crossings and copied bytes, at byte-identical response streams";
  let variants =
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_consolidated;
      Workloads.Webserver.Net_sendfile; Workloads.Webserver.Net_ring ]
  in
  let conn_counts = if !smoke then [ sc 200; sc 2_000 ] else [ 100; 1_000; 10_000 ] in
  let cpu_counts = [ 1; 4 ] in
  pf "  %5s %6s %-13s %7s %6s %10s %12s %9s %9s %9s\n" "ncpus" "conns"
    "variant" "served" "drops" "crossings" "copied(B)" "sent(KB)" "p50(us)"
    "p99(us)";
  (* (ncpus, conns, variant) -> (crossings, copied, digest) *)
  let results = Hashtbl.create 32 in
  List.iter
    (fun ncpus ->
      List.iter
        (fun conns ->
          List.iter
            (fun v ->
              let t = Core.boot_with { Core.Config.default with ncpus = Some ncpus } in
              let sys = Core.sys t in
              let kernel = Core.kernel t in
              let config =
                { Workloads.Webserver.net_default_config with
                  variant = v;
                  conns = max 1 (conns / ncpus) }
              in
              let c0 = Ksim.Kernel.crossings kernel in
              let fu0 = Ksim.Kernel.bytes_from_user kernel in
              let tu0 = Ksim.Kernel.bytes_to_user kernel in
              let served, sent, completed, digest =
                if ncpus = 1 then begin
                  Workloads.Webserver.net_setup ~config sys;
                  let r = Workloads.Webserver.run_net ~config sys in
                  ( r.Workloads.Webserver.n_served,
                    r.Workloads.Webserver.n_sent,
                    r.Workloads.Webserver.n_completed,
                    r.Workloads.Webserver.n_digest )
                end
                else begin
                  (* one listener per CPU, same total client population *)
                  let insts =
                    Workloads.Smp.webserver_net_instances ~config sys ncpus
                  in
                  ignore (Workloads.Smp.run sys insts);
                  let knet = Core.net t in
                  let completed = ref 0 in
                  for i = 0 to ncpus - 1 do
                    completed :=
                      !completed
                      + Knet.Traffic.completed knet
                          ~port:(config.Workloads.Webserver.port + i)
                  done;
                  (0, 0, !completed, "-")
                end
              in
              let stats = Core.stats t in
              let crossings = Ksim.Kernel.crossings kernel - c0 in
              let copied =
                Ksim.Kernel.bytes_from_user kernel - fu0
                + (Ksim.Kernel.bytes_to_user kernel - tu0)
              in
              let sent =
                if ncpus = 1 then sent else find_counter stats "net.bytes_out"
              in
              let served =
                if ncpus = 1 then served
                else find_counter stats "net.accepts" (* proxy: conns served *)
              in
              let drops = find_counter stats "net.backlog_drops" in
              let p50, p99 =
                match Kstats.find stats "net.request.latency" with
                | Some (Kstats.Hist_v h) -> (h.Kstats.v_p50, h.Kstats.v_p99)
                | _ -> (0, 0)
              in
              Hashtbl.replace results
                (ncpus, conns, Workloads.Webserver.net_variant_name v)
                (crossings, copied, digest);
              pf "  %5d %6d %-13s %7d %6d %10d %12d %9.0f %9.1f %9.1f\n" ncpus
                conns
                (Workloads.Webserver.net_variant_name v)
                served drops crossings copied
                (float_of_int sent /. 1024.)
                (sec p50 *. 1e6) (sec p99 *. 1e6);
              add_row "E14"
                (Printf.sprintf
                   "{\"ncpus\":%d,\"conns\":%d,\"variant\":\"%s\",\
                    \"served\":%d,\"completed\":%d,\"drops\":%d,\
                    \"crossings\":%d,\"copied_bytes\":%d,\"sent_bytes\":%d,\
                    \"latency_p50_cycles\":%d,\"latency_p99_cycles\":%d,\
                    \"digest\":\"%s\"}"
                   ncpus conns
                   (Workloads.Webserver.net_variant_name v)
                   served completed drops crossings copied sent p50 p99 digest))
            variants)
        conn_counts)
    cpu_counts;
  (* the paper's claims, at the largest population on one CPU *)
  let top = List.fold_left max 0 conn_counts in
  let get name = Hashtbl.find results (1, top, name) in
  let nx, nb, nd = get "naive" in
  List.iter
    (fun name ->
      let x, b, d = get name in
      pf "  %-13s vs naive at %d conns: %.2fx crossings, %.2fx copied \
          bytes, digests %s\n"
        name top (ratio nx x) (ratio nb b)
        (if d = nd then "equal" else "DIFFER"))
    [ "consolidated"; "sendfile"; "ring" ]

(* --------------------------------------------------- E15: kperf tracing *)

(* Tracing overhead on the E14 webserver: the same (variant, conns) cell
   is run three times — twice with the tracer disabled (proving disabled
   tracing costs zero cycles: both runs are bit-for-bit identical) and
   once with it enabled, where every stored record charges
   [trace_emit] cycles.  The claim under test is the kstats contract
   extended to tracing: disabled = free, enabled = under 2% of cycles
   even at 10k connections.  The traced run's span profile is the
   "where did the cycles go" answer E15 exists to produce. *)
let e15 () =
  header "E15" "kperf tracing overhead on the C10K webserver"
    "no direct number — §3 argues kernel-resident monitoring must be \
     cheap enough to leave on; claim under test is that full span \
     tracing of the 10k-connection sweep costs <2% cycles enabled and \
     exactly 0 disabled";
  let variants =
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_consolidated;
      Workloads.Webserver.Net_sendfile; Workloads.Webserver.Net_ring ]
  in
  let conns = sc 10_000 in
  let run_cell v ~trace =
    let t = Core.boot_with { Core.Config.default with trace = Some trace } in
    let sys = Core.sys t in
    let config =
      { Workloads.Webserver.net_default_config with variant = v; conns }
    in
    Workloads.Webserver.net_setup ~config sys;
    ignore (Workloads.Webserver.run_net ~config sys);
    (Ksim.Kernel.now (Core.kernel t), Core.perf t)
  in
  pf "  %-13s %6s %14s %14s %9s %10s %8s\n" "variant" "conns" "cycles(off)"
    "cycles(on)" "overhead" "events" "drops";
  let kperf_rows = ref [] in
  let top_tables = ref [] in
  List.iter
    (fun v ->
      let name = Workloads.Webserver.net_variant_name v in
      let off1, _ = run_cell v ~trace:false in
      let off2, _ = run_cell v ~trace:false in
      if off1 <> off2 then
        pf "  !! %s: untraced runs differ (%d vs %d) — determinism broken\n"
          name off1 off2;
      let on, perf = run_cell v ~trace:true in
      let overhead = pct_over off1 on in
      let events = Core.Perf.emitted perf in
      let drops = Core.Perf.drops perf + Core.Perf.overwritten perf in
      pf "  %-13s %6d %14d %14d %8.3f%% %10d %8d\n" name conns off1 on
        overhead events drops;
      top_tables := (name, Core.Perf.top ~n:5 perf) :: !top_tables;
      let row =
        Printf.sprintf
          "{\"variant\":\"%s\",\"conns\":%d,\"cycles_off\":%d,\
           \"cycles_off_repeat\":%d,\"cycles_on\":%d,\"overhead_pct\":%.4f,\
           \"events\":%d,\"ring_lost\":%d}"
          name conns off1 off2 on overhead events drops
      in
      kperf_rows := row :: !kperf_rows;
      add_row "E15" row)
    variants;
  (* the self-profile of the naive variant: where its cycles went *)
  (match List.assoc_opt "naive" !top_tables with
  | Some rows ->
      pf "\n  naive variant, top spans by self cycles:\n";
      List.iter
        (fun r ->
          pf "    %-32s %8d calls %14d self-cy %5.1f%%\n" r.Core.Perf.p_label
            r.Core.Perf.p_count r.Core.Perf.p_self (100. *. r.Core.Perf.p_share))
        rows
  | None -> ());
  (* machine-readable tracing-overhead summary *)
  let oc = open_out "BENCH_kperf.json" in
  output_string oc "{\"experiment\":\"E15\",\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then output_string oc ",";
      output_string oc row)
    (List.rev !kperf_rows);
  output_string oc "]}\n";
  close_out oc;
  pf "\n  wrote BENCH_kperf.json\n"

(* a Cosy compound shaped like Cosy-GCC's counted loops: getpid in a
   provably bounded loop, the boundary-dominated case §2.3 targets;
   shared by E16 (verified admission) and E17 (kopt optimization) *)
let getpid_compound iters =
  let i = 0 and c = 1 and r = 2 and tmp = 3 in
  Cosy.Compound.encode ~slot_count:4
    [
      Cosy.Cosy_op.Set { dst = i; src = Cosy.Cosy_op.Const 0 };
      Cosy.Cosy_op.Arith
        {
          dst = c;
          op = Cosy.Cosy_op.Alt;
          a = Cosy.Cosy_op.Slot i;
          b = Cosy.Cosy_op.Const iters;
        };
      Cosy.Cosy_op.Jz { cond = Cosy.Cosy_op.Slot c; target = 7 };
      Cosy.Cosy_op.Syscall { dst = r; sysno = 14 (* getpid *); args = [] };
      Cosy.Cosy_op.Arith
        {
          dst = tmp;
          op = Cosy.Cosy_op.Aadd;
          a = Cosy.Cosy_op.Slot i;
          b = Cosy.Cosy_op.Const 1;
        };
      Cosy.Cosy_op.Set { dst = i; src = Cosy.Cosy_op.Slot tmp };
      Cosy.Cosy_op.Jmp 1;
      Cosy.Cosy_op.Halt;
    ]

(* ------------------------------------------ E16: kverify admission *)

(* Two claims, one per half of the kverify subsystem.
   (1) The syscall-flow-integrity gate — an automaton learned from a
   recorded run of the same workload, consulted at every dispatch — costs
   under 2% of cycles on the full E14 webserver sweep, and a booted-but-
   empty verifier (gate installed, no automaton) is cycle-identical to no
   verifier at all, extending the kstats/kperf "disabled = free"
   contract to admission control.
   (2) Static admission pays: a kring batch or Cosy compound that the
   checker proves well-formed runs with the per-entry decode + copy-in
   replaced by a parse-in-place probe and the watchdog elided, which
   beats the dynamic path by >=1.2x once per-entry boundary work (not
   filesystem service time) dominates. *)
let e16 () =
  header "E16" "kverify: SFI gate overhead and verified-admission speedup"
    "no direct number — §2.3 bounds untrusted kernel stays dynamically \
     (watchdog); claims under test: a statically checked flow automaton \
     costs <2% on the C10K sweep, disabled admission is cycle-identical, \
     and verified batches/compounds beat the watchdog path by >=1.2x";
  (* --- part 1: SFI gate overhead on the E14 webserver variants ------- *)
  let variants =
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_consolidated;
      Workloads.Webserver.Net_sendfile; Workloads.Webserver.Net_ring ]
  in
  let conns = sc 10_000 in
  let run_cell v ~verify ~automaton =
    let t = Core.boot_with { Core.Config.default with verify } in
    (match (automaton, Core.kverify t) with
    | Some a, Some kv -> Core.Verify.set_automaton kv (Some a)
    | _ -> ());
    let sys = Core.sys t in
    let config =
      { Workloads.Webserver.net_default_config with variant = v; conns }
    in
    Workloads.Webserver.net_setup ~config sys;
    ignore (Workloads.Webserver.run_net ~config sys);
    (Ksim.Kernel.now (Core.kernel t), Core.kverify t)
  in
  pf "  %-13s %6s %14s %14s %9s %10s %6s\n" "variant" "conns" "cycles(off)"
    "cycles(sfi)" "overhead" "checked" "viol";
  List.iter
    (fun v ->
      let name = Workloads.Webserver.net_variant_name v in
      (* learn the automaton from a recorded run of the same workload *)
      let automaton =
        let t = Core.boot_with Core.Config.default in
        let rec_ = Core.trace t in
        let config =
          { Workloads.Webserver.net_default_config with variant = v; conns }
        in
        Workloads.Webserver.net_setup ~config (Core.sys t);
        ignore (Workloads.Webserver.run_net ~config (Core.sys t));
        Core.Verify.learn rec_
      in
      let off, _ = run_cell v ~verify:None ~automaton:None in
      (* gate installed but no automaton set: must be cycle-identical *)
      let off_armed, _ =
        run_cell v ~verify:(Some Core.Verify.Log) ~automaton:None
      in
      if off <> off_armed then
        pf "  !! %s: empty verifier not free (%d vs %d cycles)\n" name off
          off_armed;
      let on, kv =
        run_cell v ~verify:(Some Core.Verify.Log) ~automaton:(Some automaton)
      in
      let kv = Option.get kv in
      let checked = Core.Verify.checked kv in
      let viol = Core.Verify.violations kv in
      let overhead = pct_over off on in
      pf "  %-13s %6d %14d %14d %8.3f%% %10d %6d\n" name conns off on overhead
        checked viol;
      add_row "E16"
        (Printf.sprintf
           "{\"section\":\"sfi\",\"variant\":\"%s\",\"conns\":%d,\
            \"cycles_off\":%d,\"cycles_armed_empty\":%d,\"cycles_on\":%d,\
            \"overhead_pct\":%.4f,\"checked\":%d,\"violations\":%d}"
           name conns off off_armed on overhead checked viol))
    variants;
  (* --- part 2: verified admission vs the dynamic watchdog path ------- *)
  let file_reqs total =
    Ksyscall.Syscall.Mkdir { path = "/r" }
    :: List.init (total - 1) (fun i ->
           Ksyscall.Syscall.Open_write_close
             {
               path = Printf.sprintf "/r/f%03d" (i + 1);
               data = Bytes.make 32 'a';
               flags = Core.o_create;
             })
  in
  let getpid_reqs total = List.init total (fun _ -> Ksyscall.Syscall.Getpid) in
  let ring_cell reqs ~verify =
    let t = Core.boot_with { Core.Config.default with verify } in
    let ring = Core.ring ~sq_entries:128 t in
    let (), tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          ignore (Kring.run_batch ring reqs))
    in
    (tm.Ksim.Kernel.elapsed, Kring.watchdog_elisions ring)
  in
  let cosy_cell iters ~verify =
    let t = Core.boot_with { Core.Config.default with verify } in
    let cx = Core.cosy t in
    let compound = getpid_compound iters in
    let (), tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          ignore (Cosy.Cosy_exec.submit cx compound))
    in
    (tm.Ksim.Kernel.elapsed, Cosy.Cosy_exec.watchdog_elisions cx)
  in
  pf "\n  %-26s %14s %14s %9s %8s\n" "workload" "watchdog(cy)" "verified(cy)"
    "speedup" "admitted";
  let part2 name cell =
    let base, _ = cell ~verify:None in
    let fast, admitted = cell ~verify:(Some Core.Verify.Log) in
    pf "  %-26s %14d %14d %8.2fx %8d\n" name base fast
      (float_of_int base /. float_of_int (max 1 fast))
      admitted;
    add_row "E16"
      (Printf.sprintf
         "{\"section\":\"admission\",\"workload\":\"%s\",\
          \"cycles_watchdog\":%d,\"cycles_verified\":%d,\"speedup\":%.4f,\
          \"admitted\":%d}"
         name base fast
         (float_of_int base /. float_of_int (max 1 fast))
         admitted)
  in
  let nring = sc 256 in
  part2
    (Printf.sprintf "ring %d file ops" nring)
    (fun ~verify -> ring_cell (file_reqs nring) ~verify);
  part2
    (Printf.sprintf "ring %d getpid" nring)
    (fun ~verify -> ring_cell (getpid_reqs nring) ~verify);
  let iters = sc 2_000 in
  part2
    (Printf.sprintf "cosy getpid loop x%d" iters)
    (fun ~verify -> cosy_cell iters ~verify)

(* --------------------------------------------- E17: kopt optimization *)

(* The optimizer's claim, building on E16's verified admission: once
   kverify admits a program, compiling it — fd resolutions cached,
   contiguous copies coalesced, read->write pairs fused, counted-loop
   bodies hoisted — beats already-verified execution by >=1.3x on the
   boundary-dominated counted loop, and the per-process compiled-program
   cache makes repeat submissions cheaper still (decode + admission +
   compile all skipped).  Execution must stay observably identical:
   same result slots, same file bytes, same response digests — and a
   detached optimizer must be cycle-identical to no optimizer at all. *)
let e17 () =
  header "E17" "kopt: optimizing verified compounds + compiled-program cache"
    "no direct number — extends §2.3's statically checked execution; \
     claims under test: optimized counted loops beat verified execution \
     by >=1.3x, cache hits skip decode+admission+compile, the ring \
     webserver moves fewer copied bytes, and digests stay identical";
  let verify_cfg =
    { Core.Config.default with verify = Some Core.Verify.Log; optimize = false }
  in
  let opt_cfg = { verify_cfg with optimize = true } in
  (* --- part 1a: the counted getpid loop, verified vs optimized ------- *)
  let iters = sc 2_000 in
  let loop_cell ?(detach = false) cfg =
    let t = Core.boot_with cfg in
    let cx = Core.cosy t in
    if detach then Cosy.Cosy_exec.set_optimizer cx None;
    let compound = getpid_compound iters in
    let slots, tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          Cosy.Cosy_exec.submit cx compound)
    in
    (tm.Ksim.Kernel.elapsed, slots)
  in
  let base_cy, base_slots = loop_cell verify_cfg in
  let opt_cy, opt_slots = loop_cell opt_cfg in
  if base_slots <> opt_slots then
    pf "  !! optimized loop result slots differ from verified execution\n";
  let speedup = float_of_int base_cy /. float_of_int (max 1 opt_cy) in
  pf "  %-26s %14s %14s %9s\n" "workload" "verified(cy)" "optimized(cy)"
    "speedup";
  pf "  %-26s %14d %14d %8.2fx%s\n"
    (Printf.sprintf "cosy getpid loop x%d" iters)
    base_cy opt_cy speedup
    (if speedup < 1.3 then "  !! below 1.3x target" else "");
  add_row "E17"
    (Printf.sprintf
       "{\"section\":\"loop\",\"iters\":%d,\"cycles_verified\":%d,\
        \"cycles_optimized\":%d,\"speedup\":%.4f,\"slots_equal\":%b}"
       iters base_cy opt_cy speedup (base_slots = opt_slots));
  (* a detached optimizer must leave the dynamic watchdog path untouched:
     boot with kopt, unhook it, and demand cycle-identity with a system
     that never had it (the optimize:false regression guard) *)
  let dyn_cy, dyn_slots = loop_cell Core.Config.default in
  let det_cy, det_slots =
    loop_cell ~detach:true { Core.Config.default with optimize = true }
  in
  if dyn_cy <> det_cy || dyn_slots <> det_slots then
    pf "  !! detached optimizer not free (%d vs %d cycles)\n" dyn_cy det_cy
  else pf "  detached-optimizer identity: %d cycles both ways\n" dyn_cy;
  add_row "E17"
    (Printf.sprintf
       "{\"section\":\"identity\",\"cycles_dynamic\":%d,\
        \"cycles_detached\":%d,\"identical\":%b}"
       dyn_cy det_cy
       (dyn_cy = det_cy && dyn_slots = det_slots));
  (* --- part 1b: coalesce + fuse on a file splice compound ------------ *)
  (* open src+dst, two contiguous 1K reads (coalesce into one bulk
     read), a 512B read->write pair on the same range (fuse into a
     splice), closes: both rewrite families in one verified compound *)
  let splice_compound =
    let sysno name = Option.get (Cosy.Cosy_op.sysno_of_name name) in
    Cosy.Compound.encode ~slot_count:8
      [
        Cosy.Cosy_op.Syscall
          { dst = 0; sysno = sysno "open";
            args = [ Cosy.Cosy_op.Str "/src"; Cosy.Cosy_op.Const 0 ] };
        Cosy.Cosy_op.Syscall
          { dst = 1; sysno = sysno "open";
            args = [ Cosy.Cosy_op.Str "/dst"; Cosy.Cosy_op.Const 3 ] };
        Cosy.Cosy_op.Syscall
          { dst = 2; sysno = sysno "read";
            args =
              [ Cosy.Cosy_op.Slot 0; Cosy.Cosy_op.Shared 0;
                Cosy.Cosy_op.Const 1024 ] };
        Cosy.Cosy_op.Syscall
          { dst = 3; sysno = sysno "read";
            args =
              [ Cosy.Cosy_op.Slot 0; Cosy.Cosy_op.Shared 1024;
                Cosy.Cosy_op.Const 1024 ] };
        Cosy.Cosy_op.Syscall
          { dst = 4; sysno = sysno "read";
            args =
              [ Cosy.Cosy_op.Slot 0; Cosy.Cosy_op.Shared 2048;
                Cosy.Cosy_op.Const 512 ] };
        Cosy.Cosy_op.Syscall
          { dst = 5; sysno = sysno "write";
            args =
              [ Cosy.Cosy_op.Slot 1; Cosy.Cosy_op.Shared 2048;
                Cosy.Cosy_op.Const 512 ] };
        Cosy.Cosy_op.Syscall
          { dst = 6; sysno = sysno "close"; args = [ Cosy.Cosy_op.Slot 0 ] };
        Cosy.Cosy_op.Syscall
          { dst = 7; sysno = sysno "close"; args = [ Cosy.Cosy_op.Slot 1 ] };
        Cosy.Cosy_op.Halt;
      ]
  in
  let nsubmit = sc 200 in
  let splice_cell cfg =
    let t = Core.boot_with cfg in
    let sys = Core.sys t in
    let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/src" ~flags:Core.o_create) in
    ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.init 4096 (fun i -> Char.chr (i land 0xff)))));
    Core.ok (Core.Syscall.sys_close sys ~fd);
    let cx = Core.cosy t in
    let slots, tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          let last = ref [||] in
          for _ = 1 to nsubmit do
            last := Cosy.Cosy_exec.submit cx splice_compound
          done;
          !last)
    in
    let dst =
      Core.ok
        (Core.Syscall.sys_open_read_close sys ~path:"/dst" ~maxlen:8192)
    in
    (tm.Ksim.Kernel.elapsed, slots, Digest.to_hex (Digest.bytes dst), Core.kopt t)
  in
  let sbase_cy, sbase_slots, sbase_dig, _ = splice_cell verify_cfg in
  let sopt_cy, sopt_slots, sopt_dig, kopt = splice_cell opt_cfg in
  if sbase_slots <> sopt_slots || sbase_dig <> sopt_dig then
    pf "  !! splice compound diverged (slots or /dst bytes differ)\n";
  let sspeed = float_of_int sbase_cy /. float_of_int (max 1 sopt_cy) in
  pf "  %-26s %14d %14d %8.2fx\n"
    (Printf.sprintf "cosy splice x%d" nsubmit)
    sbase_cy sopt_cy sspeed;
  let ko = Option.get kopt in
  pf "  cache: %d hits %d misses %d compiles; fd cache: %d resolved %d reused\n"
    (Core.Opt.hits ko) (Core.Opt.misses ko) (Core.Opt.compiles ko)
    (Core.Opt.fd_resolved ko) (Core.Opt.fd_reused ko);
  add_row "E17"
    (Printf.sprintf
       "{\"section\":\"splice\",\"submissions\":%d,\"cycles_verified\":%d,\
        \"cycles_optimized\":%d,\"speedup\":%.4f,\"digest_equal\":%b,\
        \"cache_hits\":%d,\"cache_misses\":%d,\"compiles\":%d,\
        \"fd_resolved\":%d,\"fd_reused\":%d}"
       nsubmit sbase_cy sopt_cy sspeed
       (sbase_slots = sopt_slots && sbase_dig = sopt_dig)
       (Core.Opt.hits ko) (Core.Opt.misses ko) (Core.Opt.compiles ko)
       (Core.Opt.fd_resolved ko) (Core.Opt.fd_reused ko));
  (* --- part 1c: cache amortization on one compound ------------------- *)
  let t = Core.boot_with opt_cfg in
  let cx = Core.cosy t in
  let cache_compound = getpid_compound (sc 200) in
  let submit_cy () =
    let _, tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          ignore (Cosy.Cosy_exec.submit cx cache_compound))
    in
    tm.Ksim.Kernel.elapsed
  in
  let first = submit_cy () in
  let reps = 9 in
  let steady =
    let total = ref 0 in
    for _ = 1 to reps do total := !total + submit_cy () done;
    !total / reps
  in
  let ko = Option.get (Core.kopt t) in
  pf "  cache amortization: first submit %d cy, steady %d cy (%.2fx); \
      %d hits %d misses %d compiles\n"
    first steady
    (float_of_int first /. float_of_int (max 1 steady))
    (Core.Opt.hits ko) (Core.Opt.misses ko) (Core.Opt.compiles ko);
  if Core.Opt.compiles ko <> 1 || Core.Opt.hits ko <> reps then
    pf "  !! cache did not amortize (expected 1 compile, %d hits)\n" reps;
  add_row "E17"
    (Printf.sprintf
       "{\"section\":\"cache\",\"first_cycles\":%d,\"steady_cycles\":%d,\
        \"hits\":%d,\"misses\":%d,\"compiles\":%d}"
       first steady (Core.Opt.hits ko) (Core.Opt.misses ko)
       (Core.Opt.compiles ko));
  (* --- part 2: the E14 webserver sweep, optimizer off vs on ---------- *)
  let variants =
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_consolidated;
      Workloads.Webserver.Net_sendfile; Workloads.Webserver.Net_ring ]
  in
  let conns = sc 10_000 in
  let net_cell v cfg =
    let t = Core.boot_with cfg in
    let sys = Core.sys t in
    let kernel = Core.kernel t in
    let config =
      { Workloads.Webserver.net_default_config with
        variant = v;
        conns;
        (* route the Net_ring submission ring through Core.ring so the
           booted system's admission/optimization wiring attaches *)
        make_ring = Some (fun _ -> Core.ring t) }
    in
    Workloads.Webserver.net_setup ~config sys;
    let r = Workloads.Webserver.run_net ~config sys in
    let copied =
      Ksim.Kernel.bytes_from_user kernel + Ksim.Kernel.bytes_to_user kernel
    in
    ( Ksim.Kernel.now kernel,
      copied,
      r.Workloads.Webserver.n_digest,
      Core.stats t )
  in
  pf "\n  %-13s %6s %13s %13s %7s %11s %11s %6s\n" "variant" "conns"
    "cycles(off)" "cycles(opt)" "ratio" "copied(off)" "copied(opt)" "dig";
  List.iter
    (fun v ->
      let name = Workloads.Webserver.net_variant_name v in
      let off_cy, off_copied, off_dig, _ = net_cell v verify_cfg in
      let on_cy, on_copied, on_dig, stats = net_cell v opt_cfg in
      let fused = find_counter stats "ring.opt.fused_pairs" in
      let cq_saved = find_counter stats "ring.opt.cq_bytes_saved" in
      let r = float_of_int off_cy /. float_of_int (max 1 on_cy) in
      pf "  %-13s %6d %13d %13d %6.2fx %11d %11d %6s%s\n" name conns off_cy
        on_cy r off_copied on_copied
        (if off_dig = on_dig then "ok" else "FAIL")
        (if cq_saved > 0 || fused > 0 then
           Printf.sprintf "  (%d fused, %d B cq-coalesced)" fused cq_saved
         else "");
      if off_dig <> on_dig then
        pf "  !! %s: optimized responses diverge from baseline\n" name;
      add_row "E17"
        (Printf.sprintf
           "{\"section\":\"net\",\"variant\":\"%s\",\"conns\":%d,\
            \"cycles_off\":%d,\"cycles_opt\":%d,\"ratio\":%.4f,\
            \"copied_off\":%d,\"copied_opt\":%d,\"digest_equal\":%b,\
            \"fused_pairs\":%d,\"cq_bytes_saved\":%d}"
           name conns off_cy on_cy r off_copied on_copied (off_dig = on_dig)
           fused cq_saved))
    variants

(* -------------------------------------- E18: resilience under injected faults *)

(* The E14 webserver sweep re-run under kfault's wire-drop site at
   increasing fault rates.  Two claims:
   (1) the retransmit/backoff path is *correct*: at every fault rate each
   data-path variant still completes every connection and the client-side
   response digest stays byte-identical to the fault-free run — faults
   cost latency cycles, never bytes; and
   (2) the disarmed engine is *free*: the disarmed cell is cycle-identical
   to a build that never heard of kfault (checked bit-for-bit against a
   second disarmed boot).
   With [shed] the server trades fidelity for throughput under the same
   drop rate: load-shedding answers with header-only responses once the
   NIC reports drops, so digests legitimately diverge and the row records
   how many responses were shed instead. *)
let e18 () =
  header "E18" "kfault: webserver resilience under injected wire faults"
    "no direct number — §4 (isolation and recovery) applied to injected \
     failures; claim under test is that retry/backoff keeps every \
     data-path variant byte-identical under fault rates up to 1-in-4, \
     and that the disarmed fault engine costs zero cycles";
  let variants =
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_consolidated;
      Workloads.Webserver.Net_sendfile; Workloads.Webserver.Net_ring ]
  in
  let conns = sc 1_000 in
  let rates = [ 0; 64; 16; 4 ] in  (* 0 = disarmed; else Every_nth n *)
  let run_cell v ~rate ~shed =
    let t = Core.boot_with Core.Config.default in
    let sys = Core.sys t in
    let config =
      { Workloads.Webserver.net_default_config with variant = v; conns; shed }
    in
    Workloads.Webserver.net_setup ~config sys;
    if rate > 0 then
      Kfault.arm (Core.fault t)
        [ { Kfault.site = "net.wire_drop"; trigger = Kfault.Every_nth rate } ];
    let r = Workloads.Webserver.run_net ~config sys in
    (t, r)
  in
  pf "  %-13s %5s %5s %6s %9s %7s %6s %11s %14s %7s\n" "variant" "nth" "shed"
    "compl" "retrans" "backoff" "shed#" "cycles" "vs clean" "digest";
  let kfault_rows = ref [] in
  List.iter
    (fun v ->
      let name = Workloads.Webserver.net_variant_name v in
      (* the disarmed engine is free: two disarmed boots, bit-for-bit *)
      let t0, clean = run_cell v ~rate:0 ~shed:false in
      let t0', clean' = run_cell v ~rate:0 ~shed:false in
      let clean_cy = Ksim.Kernel.now (Core.kernel t0) in
      if
        clean_cy <> Ksim.Kernel.now (Core.kernel t0')
        || clean.Workloads.Webserver.n_digest
           <> clean'.Workloads.Webserver.n_digest
      then pf "  !! %s: disarmed runs differ — determinism broken\n" name;
      List.iter
        (fun rate ->
          List.iter
            (fun shed ->
              (* rate 0 + shed covers the shed-enabled fault-free baseline;
                 skip only the duplicate of the clean cell itself *)
              if not (rate = 0 && not shed) then begin
                let t, r = run_cell v ~rate ~shed in
                let stats = Core.stats t in
                let cy = Ksim.Kernel.now (Core.kernel t) in
                let retrans = find_counter stats "retry.net_retransmits" in
                let backoff = find_counter stats "retry.net_backoff_cycles" in
                let nshed = r.Workloads.Webserver.n_shed in
                let dig_eq =
                  r.Workloads.Webserver.n_digest
                  = clean.Workloads.Webserver.n_digest
                in
                pf "  %-13s %5d %5b %6d %9d %7d %6d %11d %13.2f%% %7s\n" name
                  rate shed r.Workloads.Webserver.n_completed retrans backoff
                  nshed cy (pct_over clean_cy cy)
                  (if dig_eq then "equal"
                   else if shed then "shed"
                   else "DIFFER");
                if (not dig_eq) && not shed then
                  pf "  !! %s nth:%d: responses diverged without shedding\n"
                    name rate;
                let row =
                  Printf.sprintf
                    "{\"variant\":\"%s\",\"nth\":%d,\"shed\":%b,\"conns\":%d,\
                     \"completed\":%d,\"served\":%d,\"retransmits\":%d,\
                     \"backoff_cycles\":%d,\"shed_responses\":%d,\
                     \"cycles\":%d,\"cycles_clean\":%d,\"overhead_pct\":%.4f,\
                     \"digest_equal\":%b}"
                    name rate shed conns r.Workloads.Webserver.n_completed
                    r.Workloads.Webserver.n_served retrans backoff nshed cy
                    clean_cy (pct_over clean_cy cy) dig_eq
                in
                kfault_rows := row :: !kfault_rows;
                add_row "E18" row
              end)
            [ false; true ])
        rates;
      (* the disarmed row itself, for the record *)
      let row =
        Printf.sprintf
          "{\"variant\":\"%s\",\"nth\":0,\"shed\":false,\"conns\":%d,\
           \"completed\":%d,\"served\":%d,\"retransmits\":0,\
           \"backoff_cycles\":0,\"shed_responses\":0,\"cycles\":%d,\
           \"cycles_clean\":%d,\"overhead_pct\":0.0,\"digest_equal\":true}"
          name conns clean.Workloads.Webserver.n_completed
          clean.Workloads.Webserver.n_served clean_cy clean_cy
      in
      kfault_rows := row :: !kfault_rows;
      add_row "E18" row)
    variants;
  let oc = open_out "BENCH_kfault.json" in
  output_string oc "{\"experiment\":\"E18\",\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then output_string oc ",";
      output_string oc row)
    (List.rev !kfault_rows);
  output_string oc "]}\n";
  close_out oc;
  pf "\n  wrote BENCH_kfault.json\n"

(* ----------------------------------------------------------------- E19 *)

let e19 () =
  header "E19" "kcrash: crash-consistent recovery + oops-containment overhead"
    "no direct number — §4 (isolation and recovery) taken to its end \
     state: a crashing extension must not take the kernel with it, and \
     a power loss at any durable-write boundary must recover to a \
     consistent filesystem; claims under test are zero-corruption \
     across the crash-point sweep, recovery time linear in journal \
     length, and containment machinery under a 2% cycle budget \
     (measured: disarmed it is cycle-identical)";
  let kcrash_rows = ref [] in
  let row xid json =
    kcrash_rows := json :: !kcrash_rows;
    add_row xid json
  in

  (* --- recovery time vs. journal length: N create+write ops, power
     loss, reboot from the image alone.  The whole history replays on
     mount, so recovery cost should scale linearly with the WAL. *)
  let crash_cfg =
    {
      Core.Config.default with
      Core.Config.fs = Core.Journalfs;
      crash = Some Core.Crash.default_config;
    }
  in
  (* mount cost of an empty system, to isolate the replay itself *)
  let fresh = Core.boot_with crash_cfg in
  let mount_cy = Ksim.Kernel.now (Core.kernel fresh) in
  pf "  %8s %12s %12s %14s %12s\n" "ops" "wal-records" "replayed"
    "recovery(cyc)" "cyc/record";
  List.iter
    (fun n ->
      let t = Core.boot_with crash_cfg in
      let sys = Core.sys t in
      ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/r"));
      for i = 0 to n - 1 do
        ignore
          (Core.ok
             (Core.Syscall.sys_open_write_close sys
                ~path:(Printf.sprintf "/r/f%04d" i)
                ~data:(Bytes.make (64 + (i mod 191)) 'r')
                ~flags:Core.o_create))
      done;
      let t2 = Core.reboot t in
      let recovery_cy = Ksim.Kernel.now (Core.kernel t2) - mount_cy in
      let info =
        match Core.journalfs t2 with
        | Some j -> Kvfs.Journalfs.last_recover j
        | None -> None
      in
      let scanned, replayed =
        match info with
        | Some i ->
            (i.Kvfs.Journalfs.rec_scanned, i.Kvfs.Journalfs.rec_replayed)
        | None -> (0, 0)
      in
      let fsck_errs =
        match Core.journalfs t2 with
        | Some j -> List.length (Kvfs.Journalfs.fsck j)
        | None -> 1
      in
      if fsck_errs > 0 then pf "  !! %d ops: fsck errors after recovery\n" n;
      pf "  %8d %12d %12d %14d %12.1f\n" n scanned replayed recovery_cy
        (float_of_int recovery_cy /. float_of_int (max 1 scanned));
      row "E19"
        (Printf.sprintf
           "{\"cell\":\"recovery\",\"ops\":%d,\"wal_records\":%d,\
            \"replayed\":%d,\"recovery_cycles\":%d,\"fsck_errors\":%d}"
           n scanned replayed recovery_cy fsck_errs))
    (if !smoke then [ 10; 40 ] else [ 25; 100; 400; 1_600 ]);

  (* --- containment overhead: the full resilience workload on a plain
     system vs. one with the oops reaper installed (journal kept
     non-durable so only the containment machinery differs).  Quiet,
     the reaper is a never-taken hook: the budget is <2%, the
     expectation is cycle-identical, kstats dump included. *)
  let plain_cfg =
    { Core.Config.default with Core.Config.fs = Core.Journalfs; optimize = true }
  in
  let contained_cfg =
    {
      plain_cfg with
      Core.Config.crash =
        Some { Core.Crash.contain = true; durable = false };
    }
  in
  let r_plain, _ = Resilience.run_with ~config:plain_cfg () in
  let r_cont, _ = Resilience.run_with ~config:contained_cfg () in
  let overhead =
    pct_over r_plain.Resilience.r_cycles r_cont.Resilience.r_cycles
  in
  let identical =
    r_plain.Resilience.r_cycles = r_cont.Resilience.r_cycles
    && r_plain.Resilience.r_digest = r_cont.Resilience.r_digest
    && r_plain.Resilience.r_stats = r_cont.Resilience.r_stats
  in
  pf "  containment: plain %d cyc, contained %d cyc — %+.4f%% (%s)\n"
    r_plain.Resilience.r_cycles r_cont.Resilience.r_cycles overhead
    (if identical then "cycle-identical, kstats equal"
     else "NOT identical");
  if (not identical) || abs_float overhead >= 2.0 then
    pf "  !! containment broke the disarmed-identity / 2%% budget\n";
  row "E19"
    (Printf.sprintf
       "{\"cell\":\"containment\",\"plain_cycles\":%d,\
        \"contained_cycles\":%d,\"overhead_pct\":%.4f,\"identical\":%b}"
       r_plain.Resilience.r_cycles r_cont.Resilience.r_cycles overhead
       identical);

  (* --- durable-journal cost, for the record: the same workload with
     write-ahead logging on (this one is allowed to cost cycles). *)
  let r_wal, _ = Resilience.run_with ~config:Resilience.crash_config () in
  pf "  durable WAL: %d cyc — %+.2f%% over plain\n"
    r_wal.Resilience.r_cycles
    (pct_over r_plain.Resilience.r_cycles r_wal.Resilience.r_cycles);
  row "E19"
    (Printf.sprintf
       "{\"cell\":\"wal_cost\",\"plain_cycles\":%d,\"wal_cycles\":%d,\
        \"overhead_pct\":%.4f}"
       r_plain.Resilience.r_cycles r_wal.Resilience.r_cycles
       (pct_over r_plain.Resilience.r_cycles r_wal.Resilience.r_cycles));

  (* --- the crash-point sweep, sampled: power loss at evenly spaced
     durable writes, reboot, classify.  Zero corrupt is the claim. *)
  let s = Resilience.crash_sweep ~max_per_site:(sc 40) () in
  let consistent, recovered =
    List.fold_left
      (fun (c, r) (cr : Resilience.crash_row) ->
        match cr.Resilience.cr_class with
        | Resilience.Consistent -> (c + 1, r)
        | Resilience.Recovered -> (c, r + 1)
        | Resilience.Corrupt -> (c, r))
      (0, 0) s.Resilience.cs_rows
  in
  pf
    "  crash sweep: %d/%d durable writes probed — %d consistent, %d \
     recovered, %d corrupt\n"
    (List.length s.Resilience.cs_rows)
    s.Resilience.cs_points consistent recovered s.Resilience.cs_corrupt;
  if s.Resilience.cs_corrupt > 0 then
    pf "  !! corruption survived the journal\n";
  row "E19"
    (Printf.sprintf
       "{\"cell\":\"crash_sweep\",\"reachable_points\":%d,\"probed\":%d,\
        \"consistent\":%d,\"recovered\":%d,\"corrupt\":%d}"
       s.Resilience.cs_points
       (List.length s.Resilience.cs_rows)
       consistent recovered s.Resilience.cs_corrupt);

  let oc = open_out "BENCH_kcrash.json" in
  output_string oc "{\"experiment\":\"E19\",\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",";
      output_string oc r)
    (List.rev !kcrash_rows);
  output_string oc "]}\n";
  close_out oc;
  pf "\n  wrote BENCH_kcrash.json\n"

(* ------------------------------------------------- Bechamel microbench *)

let micro () =
  pf "\n=== host-time microbenchmarks (Bechamel) ===\n";
  let open Bechamel in
  let ring = Kmonitor.Ring.create 1024 in
  let splay =
    let t = Kgcc.Splay.create () in
    for i = 0 to 511 do
      Kgcc.Splay.insert t ~base:(i * 64) ~size:64 ~meta:i
    done;
    t
  in
  let compound =
    let c = Cosy.Cosy_lib.create () in
    for _ = 1 to 16 do
      ignore (Cosy.Cosy_lib.syscall c "getpid" [])
    done;
    Cosy.Cosy_lib.finish c
  in
  let interp =
    let clock = Ksim.Sim_clock.create () in
    let mem = Ksim.Phys_mem.create ~page_size:4096 in
    let space =
      Ksim.Address_space.create ~name:"b" ~mem ~clock ~cost:Ksim.Cost_model.zero ()
    in
    let i =
      Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.zero ~base_vpn:8
        ~pages:32
    in
    ignore
      (Minic.Interp.parse_and_load i
         "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }");
    i
  in
  let test =
    Test.make_grouped ~name:"primitives"
      [
        Test.make ~name:"ring-push-pop"
          (Staged.stage (fun () ->
               ignore (Kmonitor.Ring.push ring 1);
               ignore (Kmonitor.Ring.pop ring)));
        Test.make ~name:"splay-find-hot"
          (Staged.stage (fun () -> ignore (Kgcc.Splay.find_containing splay 4096)));
        Test.make ~name:"compound-decode-16ops"
          (Staged.stage (fun () -> ignore (Cosy.Compound.decode compound)));
        Test.make ~name:"minic-100-iter-loop"
          (Staged.stage (fun () -> ignore (Minic.Interp.run interp ~args:[ 100 ] "f")));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols (List.hd instances) raw in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> pf "  %-36s %12.1f ns/op\n" name est
      | Some _ | None -> pf "  %-36s (no estimate)\n" name)
    results

(* ------------------------------------------------------------- driver *)

let all_experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19) ]

(* --- machine-readable kstats output (BENCH_kstats.json) --------------- *)

(* Every system booted while an experiment runs is captured through the
   Core.on_boot hook, so its metrics registry can be merged into the
   experiment's aggregate afterwards. *)
let booted : Core.t list ref = ref []

type exp_summary = {
  xid : string;
  boots : int;
  elapsed : int;        (* simulated cycles, summed over boots *)
  utime : int;
  stime : int;
  agg : Kstats.t;       (* merged registries of every boot *)
}

let summarize xid boots =
  let agg = Kstats.create ~enabled:true () in
  let elapsed = ref 0 and utime = ref 0 and stime = ref 0 in
  List.iter
    (fun t ->
      let k = Core.kernel t in
      elapsed := !elapsed + Ksim.Kernel.now k;
      let p = Ksim.Kernel.current k in
      utime := !utime + p.Ksim.Kproc.utime;
      stime := !stime + p.Ksim.Kproc.stime;
      Kstats.merge_into ~into:agg (Core.stats t))
    boots;
  {
    xid;
    boots = List.length boots;
    elapsed = !elapsed;
    utime = !utime;
    stime = !stime;
    agg;
  }

(* Per-syscall [(name, count, p50, p99)], from the merged registry. *)
let syscall_latencies stats =
  List.filter_map
    (fun metric ->
      match String.index_opt metric '.' with
      | Some 7 when String.length metric > 8
                    && String.sub metric 0 8 = "syscall."
                    && Filename.check_suffix metric ".latency" -> (
          let name = String.sub metric 8 (String.length metric - 16) in
          match Kstats.find stats metric with
          | Some (Kstats.Hist_v h) ->
              Some
                ( name,
                  find_counter stats ("syscall." ^ name ^ ".count"),
                  h.Kstats.v_p50,
                  h.Kstats.v_p99 )
          | _ -> None)
      | _ -> None)
    (Kstats.names stats)

let json_of_summary b s =
  Buffer.add_string b
    (Printf.sprintf
       "{\"id\":\"%s\",\"boots\":%d,\"elapsed_cycles\":%d,\"utime_cycles\":%d,\
        \"stime_cycles\":%d,\"crossings\":%d,\"syscalls\":{"
       s.xid s.boots s.elapsed s.utime s.stime
       (find_counter s.agg "kernel.crossings"));
  List.iteri
    (fun i (name, count, p50, p99) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"count\":%d,\"p50\":%d,\"p99\":%d}" name
           count p50 p99))
    (syscall_latencies s.agg);
  Buffer.add_string b "},\"metrics\":";
  Buffer.add_string b (Kstats.to_json s.agg);
  (match Hashtbl.find_opt extra_rows s.xid with
  | Some rows ->
      Buffer.add_string b ",\"rows\":[";
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b r)
        (List.rev !rows);
      Buffer.add_char b ']'
  | None -> ());
  Buffer.add_char b '}'

let write_kstats_json path summaries =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"experiments\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      json_of_summary b s)
    summaries;
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let want_micro = List.mem "micro" args in
  if List.mem "smoke" args then smoke := true;
  let selected =
    List.filter_map
      (function
        | "micro" | "all" | "smoke" -> None
        | "ring_batch" -> Some "E12"
        | a -> Some a)
      args
  in
  let to_run =
    if selected = [] then all_experiments
    else
      List.filter (fun (id, _) -> List.mem id selected) all_experiments
  in
  (* every kernel booted by the harness carries an enabled metrics
     registry; recording is cycle-neutral so reproduced numbers are
     unchanged (asserted by test_kstats) *)
  Kstats.default_enabled := true;
  Core.on_boot := (fun t -> booted := t :: !booted);
  pf "Reproduction of \"Efficient and Safe Execution of User-Level Code in \
      the Kernel\" (Zadok et al., 2005)\n";
  pf "Simulated substrate; see DESIGN.md for the substitution table and \
      EXPERIMENTS.md for analysis.\n";
  let summaries =
    List.map
      (fun (id, f) ->
        booted := [];
        f ();
        summarize id (List.rev !booted))
      to_run
  in
  if want_micro then micro ();
  if summaries <> [] then begin
    write_kstats_json "BENCH_kstats.json" summaries;
    pf "\nwrote BENCH_kstats.json (%d experiments: per-boot aggregated \
        kstats, syscall latency percentiles)\n"
      (List.length summaries)
  end
