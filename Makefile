.PHONY: all build test bench-smoke bench-e14 bench-e15 bench-e16 bench-e17 bench-e18 bench-e19 kperf-smoke kverify-smoke kopt-smoke kfault-smoke kcrash-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Every experiment end to end at tiny scale (including E12 ring_batch),
# plus the BENCH_kstats.json artifact.
bench-smoke:
	dune exec bench/main.exe -- smoke

# The C10K serving experiment at full scale: 100/1k/10k connections,
# four serving variants, 1 and 4 CPUs.  Takes a few minutes.
bench-e14:
	dune exec bench/main.exe -- E14

# Tracing overhead on the C10K webserver at full scale: all four serving
# variants with the kperf tracer on vs off, plus BENCH_kperf.json.
bench-e15:
	dune exec bench/main.exe -- E15

# Syscall-flow integrity + static admission at full scale: SFI gate
# overhead on the four E14 serving variants, then verified-vs-watchdog
# admission speedups on ring batches and a Cosy counted loop.
bench-e16:
	dune exec bench/main.exe -- E16

# The kopt optimizer at full scale: counted-loop speedup over verified
# execution, compiled-program cache amortization, the detached-optimizer
# cycle-identity check, and the webserver sweep optimizer off vs on
# (copied-byte reduction on the ring variant, digest equality).
bench-e17:
	dune exec bench/main.exe -- E17

# The resilience experiment at full scale: the four E14 serving variants
# under injected wire-drop faults at 1-in-64 / 1-in-16 / 1-in-4, with and
# without load shedding, plus BENCH_kfault.json.
bench-e18:
	dune exec bench/main.exe -- E18

# The crash experiment at full scale: recovery time vs journal length,
# oops-containment overhead (cycle-identical when quiet), the durable
# WAL cost, and a sampled crash-point sweep, plus BENCH_kcrash.json.
bench-e19:
	dune exec bench/main.exe -- E19

# Record a traced run, export it, and re-derive the folded/top views
# from the exported JSON — exercises the whole tracer pipeline on a
# tiny workload.
kperf-smoke:
	dune exec bin/kperf_tool.exe -- record -w lsdir -o /tmp/kperf_smoke.json
	dune exec bin/kperf_tool.exe -- fold /tmp/kperf_smoke.json > /dev/null
	dune exec bin/kperf_tool.exe -- top /tmp/kperf_smoke.json
	rm -f /tmp/kperf_smoke.json

# Learn a workload's syscall-flow automaton, verify a clean re-run is
# violation-free, and confirm a different workload trips the gate —
# exercises the whole kverify learn/enforce pipeline.
kverify-smoke:
	dune exec bin/kverify_tool.exe -- learn -w lsdir -o /tmp/lsdir.sfi
	dune exec bin/kverify_tool.exe -- check /tmp/lsdir.sfi -w lsdir
	! dune exec bin/kverify_tool.exe -- check /tmp/lsdir.sfi -w postmark > /dev/null
	rm -f /tmp/lsdir.sfi

# Round-trip every kopt demo compound through the optimizer printer:
# encode to disk, re-read, verify, and show the optimized plan —
# exercises the checker/compiler/pretty-printer pipeline end to end.
kopt-smoke:
	dune exec bin/kverify_tool.exe -- opt --demo loop -o /tmp/kopt_loop.cosy
	dune exec bin/kverify_tool.exe -- opt /tmp/kopt_loop.cosy > /dev/null
	dune exec bin/kverify_tool.exe -- opt --demo coalesce > /dev/null
	dune exec bin/kverify_tool.exe -- opt --demo fuse > /dev/null
	rm -f /tmp/kopt_loop.cosy

# List every fault site with its fault-free occurrence count, run one
# representative recovery plan, and sweep a capped (site, occurrence)
# grid asserting zero invariant violations — exercises the whole kfault
# engine/recovery/sweep pipeline.  Compare a faulty run's counters
# against a clean run with `kstats_tool diff` (see DESIGN.md #14).
kfault-smoke:
	dune exec bin/kfault_tool.exe -- list-sites
	dune exec bin/kfault_tool.exe -- run-plan syscall.eintr=once:1 net.wire_drop=nth:16
	dune exec bin/kfault_tool.exe -- sweep --max-per-site 2

# Inject a power loss at a capped set of durable-write boundaries and
# assert every one recovers Consistent or Recovered (exit 1 on any
# corruption), then crash one point verbosely and replay it through
# reboot + fsck — exercises the whole kcrash containment/recovery
# pipeline.
kcrash-smoke:
	dune exec bin/kcrash_tool.exe -- sweep --max-per-site 2
	dune exec bin/kcrash_tool.exe -- crash-at 100

check: build test bench-smoke kperf-smoke kverify-smoke kopt-smoke kfault-smoke kcrash-smoke

clean:
	dune clean
	rm -f BENCH_kstats.json BENCH_kperf.json BENCH_kfault.json BENCH_kcrash.json
