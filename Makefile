.PHONY: all build test bench-smoke bench-e14 check clean

all: build

build:
	dune build

test:
	dune runtest

# Every experiment end to end at tiny scale (including E12 ring_batch),
# plus the BENCH_kstats.json artifact.
bench-smoke:
	dune exec bench/main.exe -- smoke

# The C10K serving experiment at full scale: 100/1k/10k connections,
# four serving variants, 1 and 4 CPUs.  Takes a few minutes.
bench-e14:
	dune exec bench/main.exe -- E14

check: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_kstats.json
