.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Every experiment end to end at tiny scale (including E12 ring_batch),
# plus the BENCH_kstats.json artifact.
bench-smoke:
	dune exec bench/main.exe -- smoke

check: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_kstats.json
