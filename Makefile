.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# One experiment end to end, including the BENCH_kstats.json artifact.
bench-smoke:
	dune exec bench/main.exe -- E1

check: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_kstats.json
