.PHONY: all build test bench-smoke bench-e14 bench-e15 kperf-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Every experiment end to end at tiny scale (including E12 ring_batch),
# plus the BENCH_kstats.json artifact.
bench-smoke:
	dune exec bench/main.exe -- smoke

# The C10K serving experiment at full scale: 100/1k/10k connections,
# four serving variants, 1 and 4 CPUs.  Takes a few minutes.
bench-e14:
	dune exec bench/main.exe -- E14

# Tracing overhead on the C10K webserver at full scale: all four serving
# variants with the kperf tracer on vs off, plus BENCH_kperf.json.
bench-e15:
	dune exec bench/main.exe -- E15

# Record a traced run, export it, and re-derive the folded/top views
# from the exported JSON — exercises the whole tracer pipeline on a
# tiny workload.
kperf-smoke:
	dune exec bin/kperf_tool.exe -- record -w lsdir -o /tmp/kperf_smoke.json
	dune exec bin/kperf_tool.exe -- fold /tmp/kperf_smoke.json > /dev/null
	dune exec bin/kperf_tool.exe -- top /tmp/kperf_smoke.json
	rm -f /tmp/kperf_smoke.json

check: build test bench-smoke kperf-smoke

clean:
	dune clean
	rm -f BENCH_kstats.json BENCH_kperf.json
