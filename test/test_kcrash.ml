(* kcrash: oops containment (fd/heap/lock/ring reaping, bystander
   isolation, the Kefence guardian-leak regression), crash-consistent
   journal recovery (idempotent replay, torn tails, data vs. metadata
   journalling), the disarmed-identity contract, and the crash-point
   sweep. *)

let zero_config =
  { Ksim.Kernel.default_config with cost = Ksim.Cost_model.zero }

let crash_contain = { Core.Crash.contain = true; durable = false }

let boot_contained ?(fs = Core.Memfs) () =
  let t =
    Core.boot_with
      { Core.Config.default with Core.Config.fs; crash = Some crash_contain }
  in
  Kstats.set_enabled (Core.stats t) true;
  t

let find_counter stats name =
  match Kstats.find stats name with Some (Kstats.Counter_v v) -> v | _ -> 0

let check_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %a" msg Kvfs.Vtypes.pp_errno e

(* --- Front 1: oops containment ---------------------------------------- *)

let test_oops_reaps_everything () =
  let t = boot_contained () in
  let kernel = Core.kernel t in
  let sys = Core.sys t in
  let sched = Ksim.Kernel.sched kernel in
  let alloc = Ksim.Kernel.alloc kernel in
  let victim = Ksim.Scheduler.current sched in
  let pid = victim.Ksim.Kproc.pid in
  (* resources the victim will die holding: two files, a socket, slab
     and vmalloc objects, a held spinlock *)
  let _fd1 = check_ok "open" (Core.Syscall.sys_open sys ~path:"/a" ~flags:Core.o_create) in
  let _fd2 = check_ok "open" (Core.Syscall.sys_open sys ~path:"/b" ~flags:Core.o_create) in
  let _sfd = Core.Syscall.sys_socket sys in
  let km_before = Ksim.Kalloc.kmalloc_live_count alloc in
  let _addr = Ksim.Kalloc.kmalloc alloc 128 in
  let _area = Ksim.Kalloc.vmalloc alloc 4096 in
  let lock = Ksim.Spinlock.create ~ctx:(Ksim.Kernel.lock_ctx kernel) "victim" in
  Ksim.Spinlock.lock ~pid lock;
  let bystander = Ksim.Scheduler.spawn sched ~name:"bystander" in
  let procs_before = Ksim.Scheduler.process_count sched in
  Ksim.Kernel.reap kernel victim ~reason:"test-oops";
  (match Core.kcrash t with
  | None -> Alcotest.fail "no kcrash instance"
  | Some kc -> (
      Alcotest.(check int) "one oops" 1 (Kcrash.oops_count kc);
      match Kcrash.reports kc with
      | [ r ] ->
          Alcotest.(check int) "pid" pid r.Kcrash.o_pid;
          Alcotest.(check string) "reason" "test-oops" r.Kcrash.o_reason;
          Alcotest.(check int) "fds reaped" 3 r.Kcrash.o_fds;
          Alcotest.(check int) "kmallocs reaped" 1 r.Kcrash.o_kmallocs;
          Alcotest.(check int) "vmallocs reaped" 1 r.Kcrash.o_vmallocs;
          Alcotest.(check int) "locks released" 1 r.Kcrash.o_locks
      | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)));
  Alcotest.(check int) "slab back to baseline" km_before
    (Ksim.Kalloc.kmalloc_live_count alloc);
  Alcotest.(check bool) "lock free" false (Ksim.Spinlock.is_locked lock);
  Alcotest.(check bool) "lock poisoned" true (Ksim.Spinlock.poisoned lock);
  Alcotest.(check int) "victim gone" (procs_before - 1)
    (Ksim.Scheduler.process_count sched);
  Alcotest.(check int) "fd table empty" 0
    (Hashtbl.length victim.Ksim.Kproc.fd_table);
  Alcotest.(check int) "bystander untouched" 0
    (Hashtbl.length bystander.Ksim.Kproc.fd_table);
  let stats = Core.stats t in
  Alcotest.(check int) "kcrash.oops" 1 (find_counter stats "kcrash.oops");
  Alcotest.(check int) "kcrash.reaped_fds" 3
    (find_counter stats "kcrash.reaped_fds");
  Alcotest.(check int) "kcrash.reaped_heap" 2
    (find_counter stats "kcrash.reaped_heap");
  Alcotest.(check int) "kcrash.reaped_locks" 1
    (find_counter stats "kcrash.reaped_locks")

let test_oops_leaves_others_untouched () =
  let t = boot_contained () in
  let kernel = Core.kernel t in
  let sys = Core.sys t in
  let sched = Ksim.Kernel.sched kernel in
  let survivor = Ksim.Scheduler.current sched in
  (* the survivor owns /keep; the victim owns /lose (handle transferred
     into its fd table, as if it had opened it) *)
  ignore
    (check_ok "write keep"
       (Core.Syscall.sys_open_write_close sys ~path:"/keep"
          ~data:(Bytes.of_string "survives") ~flags:Core.o_create));
  let fd_keep =
    check_ok "open keep" (Core.Syscall.sys_open sys ~path:"/keep" ~flags:Core.o_rdonly)
  in
  let fd_lose =
    check_ok "open lose" (Core.Syscall.sys_open sys ~path:"/lose" ~flags:Core.o_create)
  in
  let victim = Ksim.Scheduler.spawn sched ~name:"victim" in
  let handle =
    match Ksim.Kproc.release_fd survivor fd_lose with
    | Some h -> h
    | None -> Alcotest.fail "fd_lose not in survivor's table"
  in
  Hashtbl.replace victim.Ksim.Kproc.fd_table 3 handle;
  Ksim.Kernel.reap kernel victim ~reason:"test";
  (* the victim's underlying vfs handle was closed by the reap... *)
  (match Kvfs.Vfs.close (Ksyscall.Systable.vfs sys) handle with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "victim's handle was still open after the oops");
  (* ...and the survivor's open file still reads, bit-for-bit *)
  let data = check_ok "read keep" (Core.Syscall.sys_read sys ~fd:fd_keep ~len:max_int) in
  Alcotest.(check string) "survivor's data intact" "survives"
    (Bytes.to_string data)

let test_watchdog_kill_reaps () =
  (* a runaway compound through a real kill site: the Cosy watchdog
     fires, and with kcrash installed the offender is reaped *)
  let t = boot_contained () in
  Kstats.set_enabled (Core.stats t) true;
  let policy =
    {
      Cosy.Cosy_safety.mode = Cosy.Cosy_safety.Data_segment;
      watchdog_budget = 1_000_000;
      trust_after = None;
    }
  in
  let exec = Core.cosy ~policy t in
  let c = Cosy.Cosy_lib.create () in
  let top = Cosy.Cosy_lib.next_index c in
  ignore
    (Cosy.Cosy_lib.arith_fresh c Cosy.Cosy_op.Aadd (Cosy.Cosy_op.Const 1)
       (Cosy.Cosy_op.Const 1));
  Cosy.Cosy_lib.jmp c top;
  (try
     ignore (Cosy.Cosy_exec.submit exec (Cosy.Cosy_lib.finish c));
     Alcotest.fail "expected watchdog kill"
   with Cosy.Cosy_safety.Watchdog_expired _ -> ());
  match Core.kcrash t with
  | Some kc ->
      Alcotest.(check int) "offender reaped through kcrash" 1
        (Kcrash.oops_count kc)
  | None -> Alcotest.fail "no kcrash instance"

let test_ring_discard_on_oops () =
  let t = boot_contained () in
  let kernel = Core.kernel t in
  let r = Core.ring t in
  (match Kring.push r Ksyscall.Syscall.Getpid with
  | Ok _ -> ()
  | Error `Sq_full -> Alcotest.fail "sq full");
  (match Kring.push r (Ksyscall.Syscall.Stat { path = "/" }) with
  | Ok _ -> ()
  | Error `Sq_full -> Alcotest.fail "sq full");
  Alcotest.(check int) "two queued" 2 (Kring.sq_depth r);
  let victim = Ksim.Kernel.current kernel in
  Ksim.Kernel.reap kernel victim ~reason:"test";
  Alcotest.(check int) "sq drained" 0 (Kring.sq_depth r);
  Alcotest.(check int) "cq drained" 0 (Kring.cq_depth r);
  match Core.kcrash t with
  | Some kc -> (
      match Kcrash.reports kc with
      | [ rep ] -> Alcotest.(check int) "discards reported" 2 rep.Kcrash.o_ring
      | _ -> Alcotest.fail "expected one report")
  | None -> Alcotest.fail "no kcrash instance"

let count_guardians kernel =
  let n = ref 0 in
  Ksim.Page_table.iter
    (fun ~vpn:_ pte -> if pte.Ksim.Pte.guardian then incr n)
    (Ksim.Address_space.page_table (Ksim.Kernel.kspace kernel));
  !n

let test_kefence_guardians_leak_without_kcrash () =
  (* the regression being fixed: Kefence Crash mode faults the module
     mid-syscall, and without containment its guarded buffer — guardian
     PTE included — leaks *)
  let t =
    Core.boot_with
      { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash }
  in
  let base = count_guardians (Core.kernel t) in
  (match Core.wrapfs t with
  | Some w -> Kvfs.Wrapfs.inject_overflow w 4200
  | None -> Alcotest.fail "no wrapfs");
  (try
     ignore (Core.Syscall.sys_open (Core.sys t) ~path:"/boom" ~flags:Core.o_create);
     Alcotest.fail "expected fault"
   with Ksim.Fault.Fault _ -> ());
  Alcotest.(check bool) "guardian PTEs leaked (the old behavior)" true
    (count_guardians (Core.kernel t) > base)

let test_kefence_guardians_reaped_with_kcrash () =
  let t = boot_contained ~fs:(Core.Wrapfs_kefence Kefence.Crash) () in
  (match Core.wrapfs t with
  | Some w -> Kvfs.Wrapfs.inject_overflow w 4200
  | None -> Alcotest.fail "no wrapfs");
  (try
     ignore (Core.Syscall.sys_open (Core.sys t) ~path:"/boom" ~flags:Core.o_create);
     Alcotest.fail "expected contained oops"
   with Ksim.Kernel.Oops { reason; _ } ->
     Alcotest.(check string) "contained as memory fault" "memory fault" reason);
  Alcotest.(check int) "no guardian PTE outlives the module" 0
    (count_guardians (Core.kernel t));
  (match Core.kefence t with
  | Some kf ->
      Alcotest.(check int) "overflow still reported" 1
        (Kefence.overflows_detected kf)
  | None -> Alcotest.fail "no kefence");
  match Core.kcrash t with
  | Some kc -> Alcotest.(check int) "oops recorded" 1 (Kcrash.oops_count kc)
  | None -> Alcotest.fail "no kcrash"

let test_crash_feed_mirrors_oops () =
  let t = boot_contained () in
  let feed =
    match Core.crash_feed t with
    | Some f -> f
    | None -> Alcotest.fail "no crash feed on a crash-configured system"
  in
  let kernel = Core.kernel t in
  Ksim.Kernel.reap kernel (Ksim.Kernel.current kernel) ~reason:"test";
  Alcotest.(check int) "oops mirrored" 1 (Kmonitor.Crash_feed.mirrored feed);
  Alcotest.(check int) "kmonitor counter" 1
    (find_counter (Core.stats t) "kmonitor.crash_feed.mirrored")

(* --- Front 2: crash-consistent recovery -------------------------------- *)

let mk_kernel () =
  let kernel = Ksim.Kernel.create ~config:zero_config () in
  Kstats.set_enabled (Ksim.Kernel.stats kernel) true;
  kernel

let root = Kvfs.Memfs.root_ino

let test_replay_idempotent () =
  let kernel = mk_kernel () in
  let j = Kvfs.Journalfs.create ~data_journal:true ~durable:true kernel in
  let ops = Kvfs.Journalfs.ops j in
  let ino = check_ok "create" (ops.Kvfs.Vtypes.create ~dir:root ~name:"a" Kvfs.Vtypes.Regular) in
  ignore (check_ok "write" (ops.Kvfs.Vtypes.write ~ino ~off:0 ~data:(Bytes.of_string "hello")));
  ignore (check_ok "mkdir" (ops.Kvfs.Vtypes.create ~dir:root ~name:"d" Kvfs.Vtypes.Directory));
  let image = Kvfs.Block_dev.image (Kvfs.Journalfs.dev j) in
  (* mount the survivor: the full history replays *)
  let j2 = Kvfs.Journalfs.create ~data_journal:true ~durable:true ~image (mk_kernel ()) in
  let info =
    match Kvfs.Journalfs.last_recover j2 with
    | Some i -> i
    | None -> Alcotest.fail "no replay ran on mount"
  in
  Alcotest.(check int) "three ops replayed" 3 info.Kvfs.Journalfs.rec_replayed;
  Alcotest.(check int) "nothing torn" 0 info.Kvfs.Journalfs.rec_torn;
  Alcotest.(check (list string)) "no replay errors" [] info.Kvfs.Journalfs.rec_errors;
  let ops2 = Kvfs.Journalfs.ops j2 in
  let ino2 = check_ok "lookup" (ops2.Kvfs.Vtypes.lookup ~dir:root "a") in
  let data = check_ok "read" (ops2.Kvfs.Vtypes.read ~ino:ino2 ~off:0 ~len:100) in
  Alcotest.(check string) "payload survived" "hello" (Bytes.to_string data);
  (* replay twice == replay once *)
  let again = Kvfs.Journalfs.replay j2 in
  Alcotest.(check int) "second replay applies nothing" 0
    again.Kvfs.Journalfs.rec_replayed;
  Alcotest.(check int) "all records skipped as applied" 3
    again.Kvfs.Journalfs.rec_skipped;
  let data' = check_ok "read" (ops2.Kvfs.Vtypes.read ~ino:ino2 ~off:0 ~len:100) in
  Alcotest.(check string) "content unchanged" "hello" (Bytes.to_string data');
  Alcotest.(check (list string)) "fsck clean" [] (Kvfs.Journalfs.fsck j2)

let test_torn_tail_discarded () =
  let kernel = mk_kernel () in
  let j = Kvfs.Journalfs.create ~durable:true kernel in
  let ops = Kvfs.Journalfs.ops j in
  (* op 1 commits whole; then power dies during op 2's commit record
     (arming resets the occurrence counter, so op 2's intent is durable
     write 1 and its commit is durable write 2), leaving the intent
     without a verdict *)
  ignore (check_ok "create a" (ops.Kvfs.Vtypes.create ~dir:root ~name:"a" Kvfs.Vtypes.Regular));
  Kfault.set_enabled (Ksim.Kernel.fault kernel) true;
  Kfault.arm (Ksim.Kernel.fault kernel)
    [ { Kfault.site = Resilience.crash_site; trigger = Kfault.One_shot 2 } ];
  (try
     ignore (ops.Kvfs.Vtypes.create ~dir:root ~name:"b" Kvfs.Vtypes.Regular);
     Alcotest.fail "expected power loss"
   with Kvfs.Block_dev.Power_loss -> ());
  let image = Kvfs.Block_dev.image (Kvfs.Journalfs.dev j) in
  let j2 = Kvfs.Journalfs.create ~durable:true ~image (mk_kernel ()) in
  let info =
    match Kvfs.Journalfs.last_recover j2 with
    | Some i -> i
    | None -> Alcotest.fail "no replay ran"
  in
  Alcotest.(check int) "committed op replayed" 1 info.Kvfs.Journalfs.rec_replayed;
  Alcotest.(check int) "torn tail discarded" 1 info.Kvfs.Journalfs.rec_torn;
  let ops2 = Kvfs.Journalfs.ops j2 in
  ignore (check_ok "committed op survived" (ops2.Kvfs.Vtypes.lookup ~dir:root "a"));
  (match ops2.Kvfs.Vtypes.lookup ~dir:root "b" with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e
  | Ok _ -> Alcotest.fail "torn op must vanish atomically");
  Alcotest.(check (list string)) "fsck clean" [] (Kvfs.Journalfs.fsck j2)

let test_data_vs_metadata_journal () =
  let mount ~data_journal =
    let kernel = mk_kernel () in
    let j = Kvfs.Journalfs.create ~data_journal ~durable:true kernel in
    let ops = Kvfs.Journalfs.ops j in
    let ino = check_ok "create" (ops.Kvfs.Vtypes.create ~dir:root ~name:"f" Kvfs.Vtypes.Regular) in
    ignore (check_ok "write" (ops.Kvfs.Vtypes.write ~ino ~off:0 ~data:(Bytes.of_string "payload!")));
    let image = Kvfs.Block_dev.image (Kvfs.Journalfs.dev j) in
    let j2 = Kvfs.Journalfs.create ~data_journal ~durable:true ~image (mk_kernel ()) in
    let ops2 = Kvfs.Journalfs.ops j2 in
    let ino2 = check_ok "lookup" (ops2.Kvfs.Vtypes.lookup ~dir:root "f") in
    let data = check_ok "read" (ops2.Kvfs.Vtypes.read ~ino:ino2 ~off:0 ~len:100) in
    Alcotest.(check (list string)) "fsck clean" [] (Kvfs.Journalfs.fsck j2);
    Bytes.to_string data
  in
  (* a data journal carries the payload through the crash... *)
  Alcotest.(check string) "data journal restores bytes" "payload!"
    (mount ~data_journal:true);
  (* ...metadata-only restores the shape (size, inode) but not the data *)
  Alcotest.(check string) "metadata-only restores zeros" "\000\000\000\000\000\000\000\000"
    (mount ~data_journal:false)

let test_at_trigger_parses () =
  (match Kfault.trigger_of_string "at:5" with
  | Ok (Kfault.Cycle_window { lo = 5; hi }) when hi = max_int -> ()
  | Ok tr -> Alcotest.failf "wrong trigger: %a" Kfault.pp_trigger tr
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "pp round-trips" "at:5"
    (match Kfault.trigger_of_string "at:5" with
    | Ok tr -> Fmt.str "%a" Kfault.pp_trigger tr
    | Error e -> e);
  match Kfault.trigger_of_string "at:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative cycle must not parse"

(* --- identity and the sweep -------------------------------------------- *)

let test_disarmed_identity () =
  (* installed-but-quiet containment is free: same cycles, same digest,
     same full kstats dump as a kernel without kcrash *)
  let plain_cfg =
    { Core.Config.default with Core.Config.fs = Core.Journalfs; optimize = true }
  in
  let contained_cfg =
    { plain_cfg with Core.Config.crash = Some crash_contain }
  in
  let plain, _ = Resilience.run_with ~config:plain_cfg () in
  let contained, _ = Resilience.run_with ~config:contained_cfg () in
  Alcotest.(check int) "cycle-identical" plain.Resilience.r_cycles
    contained.Resilience.r_cycles;
  Alcotest.(check string) "digest-identical" plain.Resilience.r_digest
    contained.Resilience.r_digest;
  Alcotest.(check string) "kstats-identical" plain.Resilience.r_stats
    contained.Resilience.r_stats

let test_crash_sweep_no_corruption () =
  let s = Resilience.crash_sweep ~max_per_site:3 () in
  Alcotest.(check bool) "crash points reachable" true (s.Resilience.cs_points > 0);
  List.iter
    (fun (row : Resilience.crash_row) ->
      if row.Resilience.cr_class = Resilience.Corrupt then
        Alcotest.failf "corrupt at durable write %d: %s%s"
          row.Resilience.cr_occurrence row.Resilience.cr_detail
          (String.concat "; " row.Resilience.cr_fsck_errs))
    s.Resilience.cs_rows;
  Alcotest.(check int) "zero corrupt" 0 s.Resilience.cs_corrupt

let () =
  Alcotest.run "kcrash"
    [
      ( "containment",
        [
          Alcotest.test_case "oops reaps fds/heap/locks" `Quick
            test_oops_reaps_everything;
          Alcotest.test_case "bystanders untouched" `Quick
            test_oops_leaves_others_untouched;
          Alcotest.test_case "watchdog kill reaps" `Quick
            test_watchdog_kill_reaps;
          Alcotest.test_case "ring state discarded" `Quick
            test_ring_discard_on_oops;
          Alcotest.test_case "crash feed mirrors oops" `Quick
            test_crash_feed_mirrors_oops;
        ] );
      ( "kefence-regression",
        [
          Alcotest.test_case "guardians leak without kcrash" `Quick
            test_kefence_guardians_leak_without_kcrash;
          Alcotest.test_case "guardians reaped with kcrash" `Quick
            test_kefence_guardians_reaped_with_kcrash;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replay is idempotent" `Quick
            test_replay_idempotent;
          Alcotest.test_case "torn tail discarded" `Quick
            test_torn_tail_discarded;
          Alcotest.test_case "data vs metadata journal" `Quick
            test_data_vs_metadata_journal;
          Alcotest.test_case "at: trigger parses" `Quick
            test_at_trigger_parses;
        ] );
      ( "identity",
        [
          Alcotest.test_case "disarmed bit-for-bit" `Quick
            test_disarmed_identity;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "no corruption" `Quick
            test_crash_sweep_no_corruption;
        ] );
    ]
