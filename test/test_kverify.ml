(* kverify: the SFI automaton, the static admission checker, and their
   enforcement through every dispatch entry path. *)

module Sfi = Kverify.Sfi
module Checker = Kverify.Checker
module Sysno = Ksyscall.Sysno
module Cosy_op = Cosy.Cosy_op
module Compound = Cosy.Compound

let boot ?policy () =
  Core.boot_with { Core.Config.default with verify = policy }

let kv t = Option.get (Core.kverify t)

(* An automaton that knows only the well-behaved reader: mkdir, then
   open/read/write/close cycles, plus getpid anywhere. *)
let reader_automaton () =
  Sfi.of_edges
    [
      (Sysno.Mkdir, Sysno.Open);
      (Sysno.Open, Sysno.Read);
      (Sysno.Open, Sysno.Write);
      (Sysno.Read, Sysno.Close);
      (Sysno.Write, Sysno.Close);
      (Sysno.Close, Sysno.Open);
      (Sysno.Close, Sysno.Getpid);
      (Sysno.Getpid, Sysno.Getpid);
    ]

(* --- the automaton itself ---------------------------------------------- *)

let test_sfi_permits () =
  let a = reader_automaton () in
  Alcotest.(check bool) "first syscall: any member" true
    (Sfi.permits a ~prev:None Sysno.Mkdir);
  Alcotest.(check bool) "first syscall: non-member refused" false
    (Sfi.permits a ~prev:None Sysno.Unlink);
  Alcotest.(check bool) "recorded transition" true
    (Sfi.permits a ~prev:(Some Sysno.Open) Sysno.Read);
  Alcotest.(check bool) "unrecorded transition" false
    (Sfi.permits a ~prev:(Some Sysno.Read) Sysno.Unlink)

let test_sfi_roundtrip () =
  let a = reader_automaton () in
  let b = Sfi.of_string (Sfi.to_string a) in
  Alcotest.(check int) "same members" (List.length (Sfi.members a))
    (List.length (Sfi.members b));
  Alcotest.(check bool) "same transitions" true
    (Sfi.transitions a = Sfi.transitions b);
  Alcotest.check_raises "garbage rejected" (Sfi.Parse_error "unknown syscall zorp")
    (fun () -> ignore (Sfi.of_string "v zorp\n"))

let test_sfi_learn_matches_run () =
  let t = Core.boot_with Core.Config.default in
  let rec_ = Core.trace t in
  let sys = Core.sys t in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d"));
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/d/f" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "x")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  let a = Core.Verify.learn rec_ in
  (* replaying the exact run under Kill passes *)
  let t2 = boot ~policy:Core.Verify.Kill () in
  Core.Verify.set_automaton (kv t2) (Some a);
  let sys2 = Core.sys t2 in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys2 ~path:"/d"));
  let fd = Core.ok (Core.Syscall.sys_open sys2 ~path:"/d/f" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys2 ~fd ~data:(Bytes.of_string "x")));
  ignore (Core.ok (Core.Syscall.sys_close sys2 ~fd));
  Alcotest.(check int) "violations" 0 (Core.Verify.violations (kv t2));
  Alcotest.(check int) "checked all 4 dispatches" 4 (Core.Verify.checked (kv t2))

(* --- enforcement at each entry path ------------------------------------ *)

(* Plain dispatch, Deny: the unrecorded syscall fails with EPERM before
   touching the VFS, and the process survives. *)
let test_plain_deny () =
  let t = boot ~policy:Core.Verify.Deny () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let sys = Core.sys t in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d"));
  (match Core.Syscall.sys_unlink sys ~path:"/d" with
  | Error Kvfs.Vtypes.EPERM -> ()
  | _ -> Alcotest.fail "expected EPERM from the gate");
  Alcotest.(check int) "violation counted" 1 (Core.Verify.violations (kv t));
  (* flow state did not advance: the recorded continuation still works *)
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/d/f" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "y")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd))

(* Plain dispatch, Kill: Flow_violation is raised and the process dies. *)
let test_plain_kill () =
  let t = boot ~policy:Core.Verify.Kill () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let sys = Core.sys t in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d"));
  (match Core.Syscall.sys_unlink sys ~path:"/d" with
  | exception Core.Verify.Flow_violation { sysno; _ } ->
      Alcotest.(check string) "offending sysno" "unlink" (Sysno.to_string sysno)
  | _ -> Alcotest.fail "expected Flow_violation");
  Alcotest.(check bool) "kernel mode exited" true
    (Ksim.Kernel.mode (Core.kernel t) = Ksim.Kernel.User)

(* Log: everything executes, violations only counted. *)
let test_plain_log () =
  let t = boot ~policy:Core.Verify.Log () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let sys = Core.sys t in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d"));
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d/sub"));
  Alcotest.(check int) "mkdir->mkdir logged" 1 (Core.Verify.violations (kv t))

(* Compound path: an op taking an unrecorded transition kills mid-
   compound, with kernel mode restored. *)
let test_compound_entry_gated () =
  let t = boot ~policy:Core.Verify.Kill () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let cx = Core.cosy t in
  let c = Cosy.Cosy_lib.create () in
  ignore (Cosy.Cosy_lib.syscall c "getpid" []);
  ignore (Cosy.Cosy_lib.syscall c "unlink" [ Cosy_op.Str "/nope" ]);
  (match Cosy.Cosy_exec.submit cx (Cosy.Cosy_lib.finish c) with
  | exception Core.Verify.Flow_violation { sysno; _ } ->
      Alcotest.(check string) "offender" "unlink" (Sysno.to_string sysno)
  | _ -> Alcotest.fail "expected Flow_violation from compound");
  Alcotest.(check bool) "kernel mode exited" true
    (Ksim.Kernel.mode (Core.kernel t) = Ksim.Kernel.User);
  Alcotest.(check int) "getpid admitted first" 1 (Core.Verify.violations (kv t))

(* Ring path: a drained batch hits the same gate per entry. *)
let test_ring_entry_gated () =
  let t = boot ~policy:Core.Verify.Kill () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let ring = Core.ring t in
  (match
     Kring.run_batch ring
       [ Ksyscall.Syscall.Getpid; Ksyscall.Syscall.Unlink { path = "/nope" } ]
   with
  | exception Core.Verify.Flow_violation { sysno; _ } ->
      Alcotest.(check string) "offender" "unlink" (Sysno.to_string sysno)
  | _ -> Alcotest.fail "expected Flow_violation from ring");
  Alcotest.(check bool) "kernel mode exited" true
    (Ksim.Kernel.mode (Core.kernel t) = Ksim.Kernel.User)

(* knet consolidated path: accept_recv is its own sysno and gets gated
   like everything else. *)
let test_knet_consolidated_gated () =
  let t = boot ~policy:Core.Verify.Deny () in
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let sys = Core.sys t in
  (match Core.Syscall.sys_accept_recv sys ~sock:0 ~len:16 with
  | Error Kvfs.Vtypes.EPERM -> ()
  | _ -> Alcotest.fail "expected EPERM for unrecorded accept_recv");
  Alcotest.(check int) "violation" 1 (Core.Verify.violations (kv t))

(* --- static admission: the checker ------------------------------------- *)

let counted_loop ?(two_op_increment = true) iters =
  let i = 0 and c = 1 and r = 2 and tmp = 3 in
  let increment =
    if two_op_increment then
      [
        Cosy_op.Arith
          { dst = tmp; op = Cosy_op.Aadd; a = Cosy_op.Slot i; b = Cosy_op.Const 1 };
        Cosy_op.Set { dst = i; src = Cosy_op.Slot tmp };
      ]
    else
      [
        Cosy_op.Arith
          { dst = i; op = Cosy_op.Aadd; a = Cosy_op.Slot i; b = Cosy_op.Const 1 };
      ]
  in
  let body = Cosy_op.Syscall { dst = r; sysno = 14; args = [] } :: increment in
  (* 3 header ops, the body, the back-edge Jmp, then the Halt the guard
     exits to *)
  let exit_target = 3 + List.length body + 1 in
  [
    Cosy_op.Set { dst = i; src = Cosy_op.Const 0 };
    Cosy_op.Arith
      { dst = c; op = Cosy_op.Alt; a = Cosy_op.Slot i; b = Cosy_op.Const iters };
    Cosy_op.Jz { cond = Cosy_op.Slot c; target = exit_target };
  ]
  @ body
  @ [ Cosy_op.Jmp 1; Cosy_op.Halt ]

let verify ops =
  Checker.verify_compound ~shared_size:4096
    (Compound.encode ~slot_count:8 ops)

let test_checker_accepts_loops () =
  Alcotest.(check bool) "two-op increment form" true
    (Checker.is_verified (verify (counted_loop ~two_op_increment:true 5)));
  Alcotest.(check bool) "direct increment form" true
    (Checker.is_verified (verify (counted_loop ~two_op_increment:false 5)))

let test_checker_rejects () =
  let reject ?(ops' = []) name ops =
    ignore ops';
    match verify ops with
    | Checker.Rejected _ -> ()
    | Checker.Verified _ -> Alcotest.failf "%s: unexpectedly verified" name
  in
  reject "bad opcode"
    [ Cosy_op.Syscall { dst = 0; sysno = 99; args = [] } ];
  reject "arity mismatch"
    [ Cosy_op.Syscall { dst = 0; sysno = 14; args = [ Cosy_op.Const 0 ] } ];
  reject "shared out of bounds"
    [
      Cosy_op.Syscall
        {
          dst = 0;
          sysno = 2 (* read *);
          args = [ Cosy_op.Const 3; Cosy_op.Shared 999_999; Cosy_op.Const 16 ];
        };
    ];
  reject "unguarded back-edge"
    [ Cosy_op.Syscall { dst = 0; sysno = 14; args = [] }; Cosy_op.Jmp 0 ];
  reject "user call"
    [ Cosy_op.Call_user { dst = 0; fname = "f"; args = [] } ];
  (* Ane can loop forever if the counter jumps the bound *)
  reject "inequality guard"
    (List.map
       (function
         | Cosy_op.Arith { dst; op = Cosy_op.Alt; a; b } ->
             Cosy_op.Arith { dst; op = Cosy_op.Ane; a; b }
         | op -> op)
       (counted_loop 5));
  (* a second write to the counter inside the loop breaks monotonicity *)
  reject "counter clobbered"
    (counted_loop 5
    |> List.mapi (fun idx op ->
           if idx = 3 then Cosy_op.Set { dst = 0; src = Cosy_op.Const 0 }
           else op))

let test_checker_batches () =
  Alcotest.(check bool) "good batch" true
    (Checker.is_verified
       (Checker.verify_reqs
          [
            Ksyscall.Syscall.Getpid;
            Ksyscall.Syscall.Open { path = "/a"; flags = Core.o_create };
            Ksyscall.Syscall.Read { fd = 3; len = 64 };
          ]));
  let bad reqs =
    Alcotest.(check bool) "rejected" false
      (Checker.is_verified (Checker.verify_reqs reqs))
  in
  bad [ Ksyscall.Syscall.Read { fd = -1; len = 64 } ];
  bad [ Ksyscall.Syscall.Open { path = ""; flags = [] } ];
  bad [ Ksyscall.Syscall.Bind { sock = 0; port = 0 } ];
  bad [ Ksyscall.Syscall.Pread { fd = 1; off = -5; len = 4 } ]

(* --- qcheck: admission is sound and mutation-sensitive ------------------ *)

(* Straight-line well-formed ops: every one individually valid. *)
let arb_good_op =
  QCheck.oneof
    [
      QCheck.map
        (fun d -> Cosy_op.Syscall { dst = abs d mod 8; sysno = 14; args = [] })
        QCheck.small_int;
      QCheck.map
        (fun (d, n) -> Cosy_op.Set { dst = abs d mod 8; src = Cosy_op.Const n })
        QCheck.(pair small_int int);
      QCheck.map
        (fun (d, a, b) ->
          Cosy_op.Arith
            {
              dst = abs d mod 8;
              op = Cosy_op.Aadd;
              a = Cosy_op.Const a;
              b = Cosy_op.Const b;
            })
        QCheck.(triple small_int int int);
      QCheck.map
        (fun (d, off) ->
          Cosy_op.Syscall
            {
              dst = abs d mod 8;
              sysno = 2 (* read *);
              args =
                [ Cosy_op.Const 3; Cosy_op.Shared (abs off mod 4096); Cosy_op.Const 8 ];
            })
        QCheck.(pair small_int small_int);
    ]

let arb_good_ops = QCheck.list_of_size (QCheck.Gen.int_range 1 30) arb_good_op

let qcheck_wellformed_verifies =
  QCheck.Test.make ~name:"well-formed compounds always verify" ~count:200
    arb_good_ops (fun ops -> Checker.is_verified (verify ops))

(* Single-op mutations that break a descriptor always reject. *)
let qcheck_mutations_rejected =
  QCheck.Test.make ~name:"single-op mutations always rejected" ~count:200
    QCheck.(triple arb_good_ops small_int (int_range 0 3))
    (fun (ops, at, kind) ->
      let at = abs at mod List.length ops in
      let mutant =
        match kind with
        | 0 -> Cosy_op.Syscall { dst = 0; sysno = 77; args = [] }
        | 1 -> Cosy_op.Syscall { dst = 0; sysno = 14; args = [ Cosy_op.Const 1 ] }
        | 2 ->
            Cosy_op.Syscall
              {
                dst = 0;
                sysno = 2;
                args = [ Cosy_op.Const 3; Cosy_op.Shared 99_999; Cosy_op.Const 8 ];
              }
        | _ -> Cosy_op.Set { dst = 200; src = Cosy_op.Const 0 }
      in
      let mutated = List.mapi (fun i op -> if i = at then mutant else op) ops in
      not (Checker.is_verified (verify mutated)))

(* Appending an unguarded back-edge to any straight-line program rejects. *)
let qcheck_backedge_rejected =
  QCheck.Test.make ~name:"unguarded back-edges always rejected" ~count:100
    arb_good_ops (fun ops ->
      not (Checker.is_verified (verify (ops @ [ Cosy_op.Jmp 0 ]))))

(* --- admission changes cost, never results ------------------------------ *)

let run_loop_compound t =
  let cx = Core.cosy t in
  let compound = Compound.encode ~slot_count:8 (counted_loop 50) in
  let regs = Cosy.Cosy_exec.submit cx compound in
  (regs, Cosy.Cosy_exec.watchdog_elisions cx, Ksim.Kernel.now (Core.kernel t))

let test_verified_compound_cheaper_same_result () =
  let regs_off, el_off, cycles_off = run_loop_compound (boot ()) in
  let regs_on, el_on, cycles_on =
    run_loop_compound (boot ~policy:Core.Verify.Log ())
  in
  Alcotest.(check bool) "same register file" true (regs_off = regs_on);
  Alcotest.(check int) "no elision without verifier" 0 el_off;
  Alcotest.(check int) "elided with verifier" 1 el_on;
  Alcotest.(check bool) "verified run cheaper" true (cycles_on < cycles_off)

let test_rejected_compound_same_results () =
  (* Ane guard: dynamically fine, statically unprovable *)
  let ops =
    List.map
      (function
        | Cosy_op.Arith { dst; op = Cosy_op.Alt; a; b } ->
            Cosy_op.Arith { dst; op = Cosy_op.Ane; a = b; b = a }
        | op -> op)
      (counted_loop 20)
  in
  (* Ane(iters, i) is non-zero until i reaches iters: same loop count *)
  let run t =
    let cx = Core.cosy t in
    let regs = Cosy.Cosy_exec.submit cx (Compound.encode ~slot_count:8 ops) in
    (regs, Cosy.Cosy_exec.watchdog_elisions cx)
  in
  let regs_off, _ = run (boot ()) in
  let regs_on, elided = run (boot ~policy:Core.Verify.Log ()) in
  Alcotest.(check bool) "same register file" true (regs_off = regs_on);
  Alcotest.(check int) "fell back to the watchdog path" 0 elided

let test_verified_ring_cheaper_same_replies () =
  let reqs = List.init 64 (fun _ -> Ksyscall.Syscall.Getpid) in
  let run t =
    let ring = Core.ring t in
    let replies =
      List.map (fun c -> c.Kring.reply) (Kring.run_batch ring reqs)
    in
    (replies, Kring.watchdog_elisions ring, Ksim.Kernel.now (Core.kernel t))
  in
  let r_off, el_off, cy_off = run (boot ()) in
  let r_on, el_on, cy_on = run (boot ~policy:Core.Verify.Log ()) in
  Alcotest.(check bool) "same replies" true (r_off = r_on);
  Alcotest.(check int) "no elision off" 0 el_off;
  Alcotest.(check int) "elided on" 1 el_on;
  Alcotest.(check bool) "verified batch cheaper" true (cy_on < cy_off)

(* --- disabled verifier is bit-for-bit free ------------------------------ *)

let workload sys =
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/w"));
  for i = 0 to 19 do
    let path = Printf.sprintf "/w/f%d" i in
    let fd = Core.ok (Core.Syscall.sys_open sys ~path ~flags:Core.o_create) in
    ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.make 40 'x')));
    ignore (Core.ok (Core.Syscall.sys_close sys ~fd))
  done;
  ignore (Core.ok (Core.Syscall.sys_readdir sys ~path:"/w"))

let test_disabled_identical () =
  let cycles policy =
    let t = Core.boot_with { Core.Config.default with verify = policy } in
    workload (Core.sys t);
    Ksim.Kernel.now (Core.kernel t)
  in
  let base = cycles None in
  Alcotest.(check int) "two disabled runs identical" base (cycles None);
  (* installed gate with no automaton: still free *)
  Alcotest.(check int) "armed-but-empty identical" base
    (cycles (Some Core.Verify.Log))

let test_kstats_counters () =
  Kstats.default_enabled := true;
  let t = boot ~policy:Core.Verify.Log () in
  Kstats.default_enabled := false;
  Core.Verify.set_automaton (kv t) (Some (reader_automaton ()));
  let sys = Core.sys t in
  ignore (Core.ok (Core.Syscall.sys_mkdir sys ~path:"/d"));
  ignore (Core.Syscall.sys_unlink sys ~path:"/d");
  let find name =
    match Kstats.find (Core.stats t) name with
    | Some (Kstats.Counter_v v) -> v
    | _ -> -1
  in
  Alcotest.(check int) "kverify.checked" 2 (find "kverify.checked");
  Alcotest.(check int) "kverify.violations" 1 (find "kverify.violations")

let () =
  Alcotest.run "kverify"
    [
      ( "sfi-automaton",
        [
          Alcotest.test_case "permits" `Quick test_sfi_permits;
          Alcotest.test_case "persistence roundtrip" `Quick test_sfi_roundtrip;
          Alcotest.test_case "learned replay passes" `Quick
            test_sfi_learn_matches_run;
        ] );
      ( "entry-paths",
        [
          Alcotest.test_case "plain deny" `Quick test_plain_deny;
          Alcotest.test_case "plain kill" `Quick test_plain_kill;
          Alcotest.test_case "plain log" `Quick test_plain_log;
          Alcotest.test_case "compound gated" `Quick test_compound_entry_gated;
          Alcotest.test_case "ring gated" `Quick test_ring_entry_gated;
          Alcotest.test_case "knet consolidated gated" `Quick
            test_knet_consolidated_gated;
        ] );
      ( "checker",
        [
          Alcotest.test_case "counted loops verify" `Quick
            test_checker_accepts_loops;
          Alcotest.test_case "malformed rejected" `Quick test_checker_rejects;
          Alcotest.test_case "batch shapes" `Quick test_checker_batches;
          QCheck_alcotest.to_alcotest qcheck_wellformed_verifies;
          QCheck_alcotest.to_alcotest qcheck_mutations_rejected;
          QCheck_alcotest.to_alcotest qcheck_backedge_rejected;
        ] );
      ( "admission",
        [
          Alcotest.test_case "verified compound cheaper, same result" `Quick
            test_verified_compound_cheaper_same_result;
          Alcotest.test_case "rejected compound falls back" `Quick
            test_rejected_compound_same_results;
          Alcotest.test_case "verified ring cheaper, same replies" `Quick
            test_verified_ring_cheaper_same_replies;
        ] );
      ( "zero-cost-off",
        [
          Alcotest.test_case "disabled bit-for-bit" `Quick
            test_disabled_identical;
          Alcotest.test_case "kstats counters" `Quick test_kstats_counters;
        ] );
    ]
