(* Tests for the Cosy framework: compound encoding, the builder library,
   the kernel extension, safety (watchdog, segments), and Cosy-GCC. *)

open Cosy

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e

let mk_sys () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Ksyscall.Systable.create kernel)

(* --- compound encoding --------------------------------------------------- *)

let sample_ops =
  [
    Cosy_op.Set { dst = 0; src = Cosy_op.Const 42 };
    Cosy_op.Arith { dst = 1; op = Cosy_op.Aadd; a = Cosy_op.Slot 0; b = Cosy_op.Const 1 };
    Cosy_op.Syscall { dst = 2; sysno = 0; args = [ Cosy_op.Str "/etc/passwd"; Cosy_op.Const 0 ] };
    Cosy_op.Jz { cond = Cosy_op.Slot 2; target = 5 };
    Cosy_op.Jmp 0;
    Cosy_op.Call_user { dst = 3; fname = "f"; args = [ Cosy_op.Shared 16 ] };
    Cosy_op.Halt;
  ]

let test_encode_decode () =
  let c = Compound.encode ~slot_count:4 sample_ops in
  let ops, slots = Compound.decode c in
  Alcotest.(check int) "slots" 4 slots;
  Alcotest.(check int) "op count" (List.length sample_ops) (Array.length ops);
  Alcotest.(check bool) "ops identical" true (Array.to_list ops = sample_ops)

let test_decode_charges () =
  let clock = Ksim.Sim_clock.create () in
  let c = Compound.encode ~slot_count:1 sample_ops in
  ignore (Compound.decode ~clock ~per_op:10 c);
  Alcotest.(check int) "decode cost" (10 * List.length sample_ops)
    (Ksim.Sim_clock.now clock)

let test_decode_rejects_garbage () =
  let c = Compound.encode ~slot_count:1 [ Cosy_op.Halt ] in
  let bad = { c with Compound.buf = Bytes.of_string "XXXXGARBAGE!" } in
  try
    ignore (Compound.decode bad);
    Alcotest.fail "expected decode error"
  with Compound.Decode_error _ -> ()

let arb_arg =
  QCheck.oneof
    [
      QCheck.map (fun n -> Cosy_op.Const n) QCheck.int;
      QCheck.map (fun n -> Cosy_op.Slot (abs n mod 64)) QCheck.small_int;
      QCheck.map (fun n -> Cosy_op.Shared (abs n mod 4096)) QCheck.small_int;
      QCheck.map (fun s -> Cosy_op.Str s) QCheck.printable_string;
    ]

let arb_op =
  let open QCheck in
  oneof
    [
      map
        (fun (d, s) -> Cosy_op.Set { dst = abs d mod 64; src = s })
        (pair small_int arb_arg);
      map
        (fun (d, (a, b)) ->
          Cosy_op.Arith { dst = abs d mod 64; op = Cosy_op.Amul; a; b })
        (pair small_int (pair arb_arg arb_arg));
      map
        (fun (d, args) ->
          Cosy_op.Syscall { dst = abs d mod 64; sysno = abs d mod 15; args })
        (pair small_int (list_of_size (QCheck.Gen.int_range 0 4) arb_arg));
      map (fun t -> Cosy_op.Jmp (abs t mod 1000)) small_int;
      map
        (fun (c, t) -> Cosy_op.Jz { cond = c; target = abs t mod 1000 })
        (pair arb_arg small_int);
      always Cosy_op.Halt;
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~name:"compound encode/decode round trips" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 40) arb_op) (fun ops ->
      let c = Compound.encode ~slot_count:64 ops in
      let ops', slots = Compound.decode c in
      slots = 64 && Array.to_list ops' = ops)

(* --- execution ------------------------------------------------------------ *)

let test_exec_arith_and_flow () =
  let _, sys = mk_sys () in
  let exec = Cosy_exec.create sys in
  (* sum 1..10 with a loop *)
  let c = Cosy_lib.create () in
  let i = Cosy_lib.set_fresh c (Cosy_op.Const 0) in
  let sum = Cosy_lib.set_fresh c (Cosy_op.Const 0) in
  let top = Cosy_lib.next_index c in
  let cond = Cosy_lib.arith_fresh c Cosy_op.Ale (Cosy_op.Slot i) (Cosy_op.Const 10) in
  let jz = Cosy_lib.next_index c in
  Cosy_lib.jz c (Cosy_op.Slot cond) 0;
  Cosy_lib.arith c ~dst:sum Cosy_op.Aadd (Cosy_op.Slot sum) (Cosy_op.Slot i);
  Cosy_lib.arith c ~dst:i Cosy_op.Aadd (Cosy_op.Slot i) (Cosy_op.Const 1);
  Cosy_lib.jmp c top;
  Cosy_lib.patch_jump c ~at:jz ~target:(Cosy_lib.next_index c);
  let slots = Cosy_exec.submit exec (Cosy_lib.finish c) in
  Alcotest.(check int) "sum" 55 slots.(sum);
  let st = Cosy_exec.stats exec in
  Alcotest.(check bool) "backedges seen" true (st.Cosy_exec.backedges >= 10)

let test_exec_syscalls_single_crossing () =
  let kernel, sys = mk_sys () in
  let exec = Cosy_exec.create sys in
  let c = Cosy_lib.create () in
  let buf = Cosy_lib.alloc_shared c 64 in
  (* open(create) -> write -> lseek 0 -> read -> close, one crossing *)
  let fd = Cosy_lib.syscall c "open" [ Cosy_op.Str "/z"; Cosy_op.Const (1 lor 2) ] in
  Shared_buffer.write_string (Cosy_exec.shared exec) ~off:buf "zero-copy!";
  let _w = Cosy_lib.syscall c "write" [ Cosy_op.Slot fd; Cosy_op.Shared buf; Cosy_op.Const 10 ] in
  let _ = Cosy_lib.syscall c "lseek" [ Cosy_op.Slot fd; Cosy_op.Const 0; Cosy_op.Const 0 ] in
  let r = Cosy_lib.syscall c "read" [ Cosy_op.Slot fd; Cosy_op.Shared buf; Cosy_op.Const 10 ] in
  let _ = Cosy_lib.syscall c "close" [ Cosy_op.Slot fd ] in
  let c0 = Ksim.Kernel.crossings kernel in
  let slots = Cosy_exec.submit exec (Cosy_lib.finish c) in
  Alcotest.(check int) "one crossing" 1 (Ksim.Kernel.crossings kernel - c0);
  Alcotest.(check int) "read 10 bytes" 10 slots.(r);
  Alcotest.(check string) "data round-tripped via shared buffer" "zero-copy!"
    (Shared_buffer.read_string (Cosy_exec.shared exec) ~off:buf ~len:10);
  (* no copy charges for the shared-buffer data *)
  Alcotest.(check int) "no bytes copied to user" 0 (Ksim.Kernel.bytes_to_user kernel)

let test_exec_errno_convention () =
  let _, sys = mk_sys () in
  let exec = Cosy_exec.create sys in
  let c = Cosy_lib.create () in
  let fd = Cosy_lib.syscall c "open" [ Cosy_op.Str "/missing"; Cosy_op.Const 0 ] in
  let slots = Cosy_exec.submit exec (Cosy_lib.finish c) in
  Alcotest.(check int) "-ENOENT" (-2) slots.(fd)

let test_exec_mode_restored_on_error () =
  let kernel, sys = mk_sys () in
  let exec = Cosy_exec.create sys in
  let c = Cosy_lib.create () in
  ignore (Cosy_lib.arith_fresh c Cosy_op.Adiv (Cosy_op.Const 1) (Cosy_op.Const 0));
  (try
     ignore (Cosy_exec.submit exec (Cosy_lib.finish c));
     Alcotest.fail "expected exec error"
   with Cosy_exec.Exec_error _ -> ());
  Alcotest.(check bool) "user mode restored" true
    (Ksim.Kernel.mode kernel = Ksim.Kernel.User)

let test_watchdog_kills_infinite_loop () =
  let kernel, sys = mk_sys () in
  let cost = Ksim.Kernel.cost kernel in
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Data_segment;
      watchdog_budget = 1_000_000;
      trust_after = None;
    }
  in
  ignore cost;
  let exec = Cosy_exec.create ~policy sys in
  let c = Cosy_lib.create () in
  let top = Cosy_lib.next_index c in
  ignore (Cosy_lib.arith_fresh c Cosy_op.Aadd (Cosy_op.Const 1) (Cosy_op.Const 1));
  Cosy_lib.jmp c top;
  (try
     ignore (Cosy_exec.submit exec (Cosy_lib.finish c));
     Alcotest.fail "expected watchdog kill"
   with Cosy_safety.Watchdog_expired { used; budget } ->
     Alcotest.(check bool) "used > budget" true (used > budget));
  Alcotest.(check int) "kill recorded" 1 (Cosy_exec.stats exec).Cosy_exec.watchdog_kills;
  Alcotest.(check bool) "mode restored" true (Ksim.Kernel.mode kernel = Ksim.Kernel.User)

(* --- user functions & segmentation ---------------------------------------- *)

let user_prog =
  {|
int square(int x) { return x * x; }
int touch_outside(void) {
  int *p = (int*)4096;
  return *p;
}
int spin(void) { while (1) {} return 0; }
|}

let mk_user_exec ?policy () =
  let _, sys = mk_sys () in
  Cosy_exec.create ?policy ~user_program:user_prog sys

let call_user exec fname arg =
  let c = Cosy_lib.create () in
  let r = Cosy_lib.call_user c fname [ Cosy_op.Const arg ] in
  let slots = Cosy_exec.submit exec (Cosy_lib.finish c) in
  slots.(r)

let test_user_function () =
  let exec = mk_user_exec () in
  Alcotest.(check int) "square(9)" 81 (call_user exec "square" 9)

let test_user_isolation_blocks_escape () =
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Isolated_segment;
      watchdog_budget = max_int;
      trust_after = None;
    }
  in
  let exec = mk_user_exec ~policy () in
  (* in-bounds work is fine *)
  Alcotest.(check int) "square ok" 49 (call_user exec "square" 7);
  (* reaching outside the isolated segment faults *)
  let c = Cosy_lib.create () in
  ignore (Cosy_lib.call_user c "touch_outside" []);
  try
    ignore (Cosy_exec.submit exec (Cosy_lib.finish c));
    Alcotest.fail "expected segment violation"
  with Ksim.Fault.Fault f ->
    Alcotest.(check bool) "segment violation" true
      (f.Ksim.Fault.reason = Ksim.Fault.Segment_violation)

let test_user_trusted_mode_skips_segments () =
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Trusted;
      watchdog_budget = max_int;
      trust_after = None;
    }
  in
  let exec = mk_user_exec ~policy () in
  ignore (call_user exec "square" 3);
  Alcotest.(check int) "no segment loads" 0
    (Cosy_exec.stats exec).Cosy_exec.segment_loads

let test_user_isolated_charges_segment_loads () =
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Isolated_segment;
      watchdog_budget = max_int;
      trust_after = None;
    }
  in
  let exec = mk_user_exec ~policy () in
  ignore (call_user exec "square" 3);
  ignore (call_user exec "square" 4);
  Alcotest.(check int) "two reload pairs" 4
    (Cosy_exec.stats exec).Cosy_exec.segment_loads

let test_authentication_heuristic () =
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Isolated_segment;
      watchdog_budget = max_int;
      trust_after = Some 3;
    }
  in
  let exec = mk_user_exec ~policy () in
  for _ = 1 to 5 do
    ignore (call_user exec "square" 2)
  done;
  (* first 3 runs pay segment loads (2 each); runs 4-5 are trusted *)
  Alcotest.(check int) "segment loads stop after trust" 6
    (Cosy_exec.stats exec).Cosy_exec.segment_loads;
  Alcotest.(check int) "safe runs recorded" 5
    (Cosy_safety.safe_runs (Cosy_exec.safety exec) "square")

let test_user_watchdog_in_function () =
  let policy =
    {
      Cosy_safety.mode = Cosy_safety.Data_segment;
      watchdog_budget = 200_000;
      trust_after = None;
    }
  in
  let exec = mk_user_exec ~policy () in
  let c = Cosy_lib.create () in
  ignore (Cosy_lib.call_user c "spin" []);
  try
    ignore (Cosy_exec.submit exec (Cosy_lib.finish c));
    Alcotest.fail "expected watchdog"
  with Cosy_safety.Watchdog_expired _ -> ()

(* --- Cosy-GCC --------------------------------------------------------------- *)

let gcc_prog =
  {|
int pump(void) {
  int total = 0;
  COSY_START;
  int fd = open("/data", 1);
  int i = 0;
  char buf[128];
  while (i < 5) {
    int n = read(fd, buf, 128);
    total = total + n;
    i = i + 1;
  }
  close(fd);
  COSY_END;
  return total;
}
|}

let test_cosy_gcc_compile_and_run () =
  let _, sys = mk_sys () in
  (* create a 640-byte file so five 128-byte reads succeed *)
  ignore
    (ok
       (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/data"
          ~data:(Bytes.make 640 'd')
          ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  let program = Minic.Parser.parse_program ~file:"gcc_prog.c" gcc_prog in
  let compiled = Cosy_gcc.compile program ~fname:"pump" in
  Alcotest.(check bool) "ops generated" true (compiled.Cosy_gcc.op_count > 5);
  (* buf mapped into the shared buffer: automatic zero-copy *)
  Alcotest.(check bool) "buf is shared" true
    (List.mem_assoc "buf" compiled.Cosy_gcc.shared_of_bufs);
  let exec = Cosy_exec.create sys in
  let slots = Cosy_exec.submit exec compiled.Cosy_gcc.compound in
  let total_slot = List.assoc "total" compiled.Cosy_gcc.slots_of_vars in
  Alcotest.(check int) "read 5*128 bytes" 640 slots.(total_slot)

let test_cosy_gcc_if_else () =
  let _, sys = mk_sys () in
  let program =
    Minic.Parser.parse_program
      {|int f(void) {
          int r = 0;
          COSY_START;
          int pid = getpid();
          if (pid > 0) r = 10; else r = 20;
          COSY_END;
          return r;
        }|}
  in
  let compiled = Cosy_gcc.compile program ~fname:"f" in
  let exec = Cosy_exec.create sys in
  let slots = Cosy_exec.submit exec compiled.Cosy_gcc.compound in
  Alcotest.(check int) "took then branch" 10
    slots.(List.assoc "r" compiled.Cosy_gcc.slots_of_vars)

let test_cosy_gcc_break () =
  let program =
    Minic.Parser.parse_program
      {|int f(void) {
          int i = 0;
          COSY_START;
          while (1) {
            i = i + 1;
            if (i >= 7) break;
          }
          COSY_END;
          return i;
        }|}
  in
  let compiled = Cosy_gcc.compile program ~fname:"f" in
  let exec = Cosy_exec.create (snd (mk_sys ())) in
  let slots = Cosy_exec.submit exec compiled.Cosy_gcc.compound in
  Alcotest.(check int) "loop broke at 7" 7
    slots.(List.assoc "i" compiled.Cosy_gcc.slots_of_vars)

let test_cosy_gcc_rejects_unsupported () =
  let reject src fname =
    let program = Minic.Parser.parse_program src in
    try
      ignore (Cosy_gcc.compile program ~fname);
      Alcotest.fail "expected Unsupported"
    with Cosy_gcc.Unsupported _ -> ()
  in
  reject
    "int f(void) { COSY_START; int x = 0; int *p = &x; COSY_END; return 0; }"
    "f";
  reject "int f(void) { COSY_START; return 1; COSY_END; }" "f";
  reject "int f(void) { return 0; }" "f"

let test_cosy_gcc_matches_interp () =
  (* the marked region computes the same value whether interpreted in
     user space or compiled to a compound and run in the kernel *)
  let src =
    {|int f(void) {
        int acc = 1;
        COSY_START;
        int i = 1;
        while (i <= 6) {
          acc = acc * i;
          i = i + 1;
        }
        COSY_END;
        return acc;
      }|}
  in
  let program = Minic.Parser.parse_program src in
  (* interpreted *)
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space = Ksim.Address_space.create ~name:"u" ~mem ~clock ~cost:Ksim.Cost_model.zero () in
  let interp = Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.zero ~base_vpn:8 ~pages:16 in
  ignore (Minic.Interp.load_program interp program);
  let expected = Minic.Interp.run interp "f" in
  (* compiled *)
  let compiled = Cosy_gcc.compile program ~fname:"f" in
  let exec = Cosy_exec.create (snd (mk_sys ())) in
  let slots = Cosy_exec.submit exec compiled.Cosy_gcc.compound in
  Alcotest.(check int) "same factorial" expected
    slots.(List.assoc "acc" compiled.Cosy_gcc.slots_of_vars)

let test_cosy_gcc_for_loop () =
  (* Sfor lowering: the step must run even though the body has an if *)
  let program =
    Minic.Parser.parse_program
      {|int f(void) {
          int s = 0;
          COSY_START;
          int i = 0;
          for (i = 0; i < 8; i = i + 1) {
            if (i > 3) s = s + 10; else s = s + 1;
          }
          COSY_END;
          return s;
        }|}
  in
  let compiled = Cosy_gcc.compile program ~fname:"f" in
  let exec = Cosy_exec.create (snd (mk_sys ())) in
  let slots = Cosy_exec.submit exec compiled.Cosy_gcc.compound in
  Alcotest.(check int) "4*1 + 4*10" 44
    slots.(List.assoc "s" compiled.Cosy_gcc.slots_of_vars)

(* --- profiling advisor (the 2.4 future-work plan) --------------------------- *)

let profile_src =
  {|
int hot_loop(int fd) {
  int total = 0;
  int i = 0;
  while (i < 1000) {
    char buf[64];
    int n = read(fd, buf, 64);
    total = total + n;
    i = i + 1;
  }
  return total;
}
int cold_path(int fd) {
  return fstat(fd);
}
int pure_math(int x) { return x * x + 1; }
|}

let test_profile_ranks_hot_loops () =
  let p = Minic.Parser.parse_program profile_src in
  let suggestions = Cosy_profile.advise p in
  (match suggestions with
  | first :: _ ->
      Alcotest.(check string) "hot loop ranked first" "hot_loop"
        first.Cosy_profile.target;
      Alcotest.(check bool) "big estimated saving" true
        (first.Cosy_profile.est_crossings_saved > 10)
  | [] -> Alcotest.fail "no suggestions");
  (* syscall-free code is never suggested *)
  Alcotest.(check bool) "pure function not suggested" true
    (not (List.exists (fun s -> s.Cosy_profile.target = "pure_math") suggestions))

let test_profile_threshold () =
  let p = Minic.Parser.parse_program profile_src in
  let all = Cosy_profile.advise ~threshold:0.5 p in
  Alcotest.(check bool) "cold path included at low threshold" true
    (List.exists (fun s -> s.Cosy_profile.target = "cold_path") all);
  let strict = Cosy_profile.advise ~threshold:1000.0 p in
  Alcotest.(check bool) "only the loop survives a strict threshold" true
    (List.for_all (fun s -> s.Cosy_profile.target = "hot_loop") strict)

let test_profile_dynamic_counts () =
  (* dynamic counts override the static trip-count guess *)
  let p = Minic.Parser.parse_program profile_src in
  let counts = Hashtbl.create 4 in
  (* pretend tracing showed cold_path's fstat executing constantly *)
  Hashtbl.replace counts ("cold_path", 14) 100_000;
  let s = Cosy_profile.advise ~dynamic_counts:counts p in
  match s with
  | first :: _ ->
      Alcotest.(check string) "dynamic evidence wins" "cold_path"
        first.Cosy_profile.target
  | [] -> Alcotest.fail "no suggestions"

(* --- shared buffer ----------------------------------------------------------- *)

let test_shared_buffer_bounds () =
  let b = Shared_buffer.create 128 in
  Shared_buffer.write_string b ~off:100 "abc";
  Alcotest.(check string) "read back" "abc" (Shared_buffer.read_string b ~off:100 ~len:3);
  Alcotest.(check int) "high water" 103 (Shared_buffer.high_water b);
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Shared_buffer: range [126,+3) outside buffer of 128")
    (fun () -> Shared_buffer.write_string b ~off:126 "abc")

let () =
  Alcotest.run "cosy"
    [
      ( "compound",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode;
          Alcotest.test_case "decode cost" `Quick test_decode_charges;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
      ( "exec",
        [
          Alcotest.test_case "arith+flow" `Quick test_exec_arith_and_flow;
          Alcotest.test_case "syscalls single crossing" `Quick test_exec_syscalls_single_crossing;
          Alcotest.test_case "errno convention" `Quick test_exec_errno_convention;
          Alcotest.test_case "mode restored" `Quick test_exec_mode_restored_on_error;
          Alcotest.test_case "watchdog" `Quick test_watchdog_kills_infinite_loop;
        ] );
      ( "user-functions",
        [
          Alcotest.test_case "basic call" `Quick test_user_function;
          Alcotest.test_case "isolation blocks escape" `Quick test_user_isolation_blocks_escape;
          Alcotest.test_case "trusted skips segments" `Quick test_user_trusted_mode_skips_segments;
          Alcotest.test_case "isolated pays reloads" `Quick test_user_isolated_charges_segment_loads;
          Alcotest.test_case "authentication heuristic" `Quick test_authentication_heuristic;
          Alcotest.test_case "watchdog in user fn" `Quick test_user_watchdog_in_function;
        ] );
      ( "cosy-gcc",
        [
          Alcotest.test_case "compile+run" `Quick test_cosy_gcc_compile_and_run;
          Alcotest.test_case "if/else" `Quick test_cosy_gcc_if_else;
          Alcotest.test_case "break" `Quick test_cosy_gcc_break;
          Alcotest.test_case "rejects unsupported" `Quick test_cosy_gcc_rejects_unsupported;
          Alcotest.test_case "matches interp" `Quick test_cosy_gcc_matches_interp;
          Alcotest.test_case "for loop lowering" `Quick test_cosy_gcc_for_loop;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "ranks hot loops" `Quick test_profile_ranks_hot_loops;
          Alcotest.test_case "threshold" `Quick test_profile_threshold;
          Alcotest.test_case "dynamic counts" `Quick test_profile_dynamic_counts;
        ] );
      ( "shared-buffer",
        [ Alcotest.test_case "bounds" `Quick test_shared_buffer_bounds ] );
    ]
