(* Tests for the Core facade: booting each filesystem stack and the
   attach/detach helpers. *)

let test_boot_memfs () =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/hello" ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string "world")));
  ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
  Alcotest.(check string) "round trip" "world"
    (Bytes.to_string
       (Core.ok (Core.Syscall.sys_open_read_close sys ~path:"/hello" ~maxlen:100)));
  Alcotest.(check bool) "no optional subsystems" true
    (Core.kefence t = None && Core.wrapfs t = None && Core.journalfs t = None)

let test_boot_each_fs () =
  let stacks =
    [
      ("wrapfs-kmalloc", Core.Wrapfs_kmalloc);
      ("wrapfs-kefence", Core.Wrapfs_kefence Kefence.Crash);
      ("journalfs", Core.Journalfs);
      ("journalfs-kgcc", Core.Journalfs_kgcc);
    ]
  in
  List.iter
    (fun (name, fs) ->
      let t = Core.boot_with { Core.Config.default with fs } in
      let sys = Core.sys t in
      let fd =
        Core.ok (Core.Syscall.sys_open sys ~path:"/f" ~flags:Core.o_create)
      in
      ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.of_string name)));
      ignore (Core.ok (Core.Syscall.sys_close sys ~fd));
      let st = Core.ok (Core.Syscall.sys_stat sys ~path:"/f") in
      Alcotest.(check int) (name ^ " size") (String.length name)
        st.Kvfs.Vtypes.st_size)
    stacks

let test_boot_flags_expose_subsystems () =
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Log_only } in
  (match Core.kefence t with
  | Some kf -> Alcotest.(check bool) "mode respected" true (Kefence.mode kf = Kefence.Log_only)
  | None -> Alcotest.fail "kefence expected");
  Alcotest.(check bool) "wrapfs exposed" true (Core.wrapfs t <> None);
  let t2 = Core.boot_with { Core.Config.default with fs = Core.Journalfs_kgcc } in
  Alcotest.(check bool) "kgcc runtime exposed" true (Core.kgcc_runtime t2 <> None)

let test_monitoring_lifecycle () =
  let t = Core.boot_with Core.Config.default in
  Alcotest.(check bool) "off initially" true (Core.dispatcher t = None);
  let d = Core.enable_monitoring t in
  let l = Ksim.Spinlock.create "probe" in
  Ksim.Spinlock.lock l;
  Ksim.Spinlock.unlock l;
  Alcotest.(check int) "events flow" 2 (Kmonitor.Dispatcher.events d);
  Core.disable_monitoring t;
  Ksim.Spinlock.lock l;
  Ksim.Spinlock.unlock l;
  Alcotest.(check int) "events stop" 2 (Kmonitor.Dispatcher.events d)

let test_trace_helper () =
  let t = Core.boot_with Core.Config.default in
  let r = Core.trace t in
  ignore (Core.Syscall.sys_getpid (Core.sys t));
  Alcotest.(check int) "recorded" 1 (Ktrace.Recorder.count r)

let test_cosy_helper () =
  let t = Core.boot_with Core.Config.default in
  let exec = Core.cosy t in
  let c = Cosy.Cosy_lib.create () in
  let r = Cosy.Cosy_lib.syscall c "getpid" [] in
  let slots = Cosy.Cosy_exec.submit exec (Cosy.Cosy_lib.finish c) in
  Alcotest.(check int) "getpid via compound" 1 slots.(r)

let test_sys_error_exception () =
  let t = Core.boot_with Core.Config.default in
  try
    ignore (Core.ok (Core.Syscall.sys_stat (Core.sys t) ~path:"/absent"));
    Alcotest.fail "expected Sys_error"
  with Core.Sys_error e ->
    Alcotest.(check string) "errno" "ENOENT" (Kvfs.Vtypes.errno_to_string e)

let test_custom_cost_model () =
  let config =
    { Ksim.Kernel.default_config with cost = Ksim.Cost_model.zero }
  in
  let t = Core.boot_with { Core.Config.default with kernel = config } in
  ignore (Core.Syscall.sys_getpid (Core.sys t));
  Alcotest.(check int) "free under zero model" 0 (Ksim.Kernel.now (Core.kernel t))

let () =
  Alcotest.run "core"
    [
      ( "boot",
        [
          Alcotest.test_case "memfs" `Quick test_boot_memfs;
          Alcotest.test_case "each fs" `Quick test_boot_each_fs;
          Alcotest.test_case "subsystems" `Quick test_boot_flags_expose_subsystems;
          Alcotest.test_case "cost model" `Quick test_custom_cost_model;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "monitoring" `Quick test_monitoring_lifecycle;
          Alcotest.test_case "trace" `Quick test_trace_helper;
          Alcotest.test_case "cosy" `Quick test_cosy_helper;
          Alcotest.test_case "sys error" `Quick test_sys_error_exception;
        ] );
    ]
