(* kfault: the deterministic fault-injection engine, its zero-impact
   disarmed contract, the per-subsystem recovery paths, and the
   systematic resilience sweep. *)

(* --- the engine alone -------------------------------------------------- *)

let test_triggers () =
  let f = Kfault.create ~enabled:true () in
  let s = Kfault.register f "x" in
  Kfault.arm f [ { Kfault.site = "x"; trigger = Kfault.Every_nth 3 } ];
  let fires = ref 0 in
  for _ = 1 to 9 do
    if Kfault.fire f s then incr fires
  done;
  Alcotest.(check int) "nth:3 over 9 occurrences" 3 !fires;
  Alcotest.(check int) "occurrences counted" 9 (Kfault.occurrences f s);
  Kfault.arm f [ { Kfault.site = "x"; trigger = Kfault.One_shot 4 } ];
  Alcotest.(check int) "arm resets" 0 (Kfault.occurrences f s);
  let pattern = List.init 6 (fun _ -> Kfault.fire f s) in
  Alcotest.(check (list bool))
    "once:4 fires exactly at 4"
    [ false; false; false; true; false; false ]
    pattern

let test_prob_deterministic () =
  let stream seed =
    let f = Kfault.create ~enabled:true () in
    let s = Kfault.register f "p" in
    Kfault.arm f [ { Kfault.site = "p"; trigger = Kfault.Prob { seed; ppm = 250_000 } } ];
    List.init 200 (fun _ -> Kfault.fire f s)
  in
  Alcotest.(check (list bool)) "same seed, same stream" (stream 42) (stream 42);
  Alcotest.(check bool)
    "different seed, different stream" true
    (stream 42 <> stream 43);
  let hits = List.length (List.filter Fun.id (stream 42)) in
  Alcotest.(check bool)
    (Printf.sprintf "ppm respected roughly (got %d/200)" hits)
    true
    (hits > 20 && hits < 80)

let test_counting_mode_and_disarm () =
  let f = Kfault.create ~enabled:true () in
  let s = Kfault.register f "x" in
  Kfault.arm f [];
  for _ = 1 to 5 do
    ignore (Kfault.fire f s)
  done;
  Alcotest.(check int) "counting mode counts" 5 (Kfault.occurrences f s);
  Alcotest.(check int) "counting mode never fires" 0 (Kfault.fires f s);
  Kfault.disarm f;
  for _ = 1 to 5 do
    ignore (Kfault.fire f s)
  done;
  Alcotest.(check int) "disarmed stops counting" 5 (Kfault.occurrences f s)

let test_late_registration_binds_plan () =
  let f = Kfault.create ~enabled:true () in
  Kfault.arm ~strict:false f
    [ { Kfault.site = "late.site"; trigger = Kfault.One_shot 1 } ];
  let s = Kfault.register f "late.site" in
  Alcotest.(check bool) "fires on first occurrence" true (Kfault.fire f s);
  Alcotest.(check bool) "one-shot spent" false (Kfault.fire f s)

let test_plan_specs () =
  let ok spec expect =
    match Kfault.plan_of_spec spec with
    | Ok p -> Alcotest.(check string) spec expect (Fmt.str "%a" Kfault.pp_plan p)
    | Error e -> Alcotest.failf "%s: %s" spec e
  in
  ok "a.b=nth:4" "a.b=nth:4";
  ok "a.b=once:9" "a.b=once:9";
  ok "a.b=prob:500:7" "a.b=prob:500:7";
  ok "a.b=window:10:20" "a.b=window:10:20";
  List.iter
    (fun spec ->
      match Kfault.plan_of_spec spec with
      | Ok _ -> Alcotest.failf "%s should not parse" spec
      | Error _ -> ())
    [ "a.b"; "=nth:1"; "a.b=nth:0"; "a.b=prob:2000000:1"; "a.b=window:9:9"; "a.b=zap:1" ]

let test_sweep_points () =
  let counts = [ ("a", 10); ("b", 0); ("c", 2) ] in
  Alcotest.(check int)
    "uncapped: every occurrence" 12
    (List.length (Kfault.sweep_points counts));
  let capped = Kfault.sweep_points ~max_per_site:4 counts in
  Alcotest.(check int) "capped" 6 (List.length capped);
  Alcotest.(check bool)
    "cap includes first and last" true
    (List.mem ("a", 1) capped && List.mem ("a", 10) capped);
  Alcotest.(check (list (pair string int)))
    "cap of one" [ ("a", 1); ("c", 1) ]
    (Kfault.sweep_points ~max_per_site:1 counts)

(* --- zero-impact disarmed contract ------------------------------------- *)

(* The standard workload under a counting-mode engine must be
   bit-for-bit identical to the same workload with the engine disabled
   outright: same cycles, same payload digest, same kstats report. *)
let test_disarmed_bit_for_bit () =
  let counting = Resilience.run () in
  Kfault.default_enabled := false;
  let disabled =
    Fun.protect
      ~finally:(fun () -> Kfault.default_enabled := true)
      (fun () -> Resilience.run ())
  in
  Alcotest.(check (option string)) "counting escapes nothing" None
    counting.Resilience.r_escaped;
  Alcotest.(check (list string)) "counting errs nothing" []
    counting.Resilience.r_errs;
  Alcotest.(check int) "identical cycles" disabled.Resilience.r_cycles
    counting.Resilience.r_cycles;
  Alcotest.(check string) "identical digest" disabled.Resilience.r_digest
    counting.Resilience.r_digest;
  Alcotest.(check string) "identical kstats report"
    disabled.Resilience.r_stats counting.Resilience.r_stats;
  (* and the counting run actually watched every site *)
  let reached =
    List.filter (fun (_, occ, _) -> occ > 0) counting.Resilience.r_counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 sites reached (got %d)" (List.length reached))
    true
    (List.length reached >= 10)

(* --- recovery paths, site by site -------------------------------------- *)

let boot () =
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kmalloc } in
  Kstats.set_enabled (Core.stats t) true;
  t

let arm t plans =
  Kfault.arm ~strict:false (Core.fault t)
    (List.map
       (fun (site, trigger) -> { Kfault.site; trigger })
       plans)

let counter_value t name =
  match Kstats.find (Core.stats t) name with
  | Some (Kstats.Counter_v n) -> n
  | _ -> 0

let test_kmalloc_enomem_errno () =
  let t = boot () in
  ignore (Ksyscall.Usyscall.sys_mkdir (Core.sys t) ~path:"/d");
  arm t [ ("kalloc.kmalloc", Kfault.Every_nth 1) ];
  (match
     Ksyscall.Usyscall.sys_open (Core.sys t) ~path:"/d/f" ~flags:Core.o_create
   with
  | Error Kvfs.Vtypes.ENOMEM -> ()
  | Error e ->
      Alcotest.failf "expected ENOMEM, got %s" (Kvfs.Vtypes.errno_to_string e)
  | Ok _ -> Alcotest.fail "expected ENOMEM, got success");
  Kfault.disarm (Core.fault t);
  (* the kernel survives: the same create now succeeds *)
  match
    Ksyscall.Usyscall.sys_open (Core.sys t) ~path:"/d/f" ~flags:Core.o_create
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recovery open: %s" (Kvfs.Vtypes.errno_to_string e)

let test_eintr_transparent_restart () =
  let t = boot () in
  arm t [ ("syscall.eintr", Kfault.One_shot 1) ];
  (match Ksyscall.Usyscall.sys_mkdir (Core.sys t) ~path:"/d" with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "restart should hide EINTR, got %s"
        (Kvfs.Vtypes.errno_to_string e));
  Alcotest.(check int) "one restart counted" 1
    (counter_value t "retry.eintr_restarts")

let test_eintr_gives_up () =
  let t = boot () in
  arm t [ ("syscall.eintr", Kfault.Every_nth 1) ];
  match Ksyscall.Usyscall.sys_mkdir (Core.sys t) ~path:"/d" with
  | Error Kvfs.Vtypes.EINTR -> ()
  | Error e ->
      Alcotest.failf "expected EINTR, got %s" (Kvfs.Vtypes.errno_to_string e)
  | Ok _ -> Alcotest.fail "a permanent interrupt storm cannot succeed"

let test_ring_partial_progress () =
  let t = boot () in
  ignore (Ksyscall.Usyscall.sys_mkdir (Core.sys t) ~path:"/d");
  (match
     Ksyscall.Usyscall.sys_open_write_close (Core.sys t) ~path:"/d/a"
       ~data:(Bytes.make 64 'a') ~flags:Core.o_create
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup: %s" (Kvfs.Vtypes.errno_to_string e));
  let ring = Core.ring t in
  arm t [ ("ring.partial_enter", Kfault.Every_nth 1) ];
  let comps =
    Kring.run_batch ring
      [
        Ksyscall.Syscall.Open_read_close { path = "/d/a"; maxlen = 64 };
        Ksyscall.Syscall.Stat { path = "/d/a" };
        Ksyscall.Syscall.Getpid;
      ]
  in
  Alcotest.(check int) "every op completed" 3 (List.length comps);
  List.iter
    (fun (c : Kring.completion) ->
      match c.Kring.reply with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "ring op: %s" (Kvfs.Vtypes.errno_to_string e))
    comps;
  Alcotest.(check bool) "ring.partial counted" true
    (counter_value t "ring.partial" >= 1)

let test_kopt_invalidation_recompiles () =
  let t =
    Core.boot_with
      { Core.Config.default with fs = Core.Wrapfs_kmalloc; optimize = true }
  in
  Kstats.set_enabled (Core.stats t) true;
  ignore (Ksyscall.Usyscall.sys_mkdir (Core.sys t) ~path:"/d");
  ignore
    (Ksyscall.Usyscall.sys_open_write_close (Core.sys t) ~path:"/d/a"
       ~data:(Bytes.make 100 'z') ~flags:Core.o_create);
  let exec = Core.cosy t in
  let build () =
    let c = Cosy.Cosy_lib.create () in
    let buf = Cosy.Cosy_lib.alloc_shared c 256 in
    let fd =
      Cosy.Cosy_lib.syscall c "open"
        [ Cosy.Cosy_op.Str "/d/a"; Cosy.Cosy_op.Const 0 ]
    in
    let n =
      Cosy.Cosy_lib.syscall c "read"
        [ Cosy.Cosy_op.Slot fd; Cosy.Cosy_op.Shared buf; Cosy.Cosy_op.Const 256 ]
    in
    ignore (Cosy.Cosy_lib.syscall c "close" [ Cosy.Cosy_op.Slot fd ]);
    (Cosy.Cosy_lib.finish c, n)
  in
  let compound, n = build () in
  let first = (Cosy.Cosy_exec.submit exec compound).(n) in
  arm t [ ("kopt.cache_invalidate", Kfault.Every_nth 1) ];
  let compound2, n2 = build () in
  let second = (Cosy.Cosy_exec.submit exec compound2).(n2) in
  Alcotest.(check int) "invalidated entry recompiles to the same result"
    first second;
  Alcotest.(check bool) "invalidation counted" true
    (counter_value t "kopt.cache.invalidations" >= 1)

let test_net_backoff_recovers () =
  let cfg =
    {
      Workloads.Webserver.net_default_config with
      conns = 8;
      requests_per_conn = 2;
    }
  in
  let clean =
    let t = boot () in
    Workloads.Webserver.net_setup ~config:cfg (Core.sys t);
    Workloads.Webserver.run_net ~config:cfg (Core.sys t)
  in
  let t = boot () in
  Workloads.Webserver.net_setup ~config:cfg (Core.sys t);
  (* A dense seeded drop rate: deterministic for a fixed seed, and heavy
     enough that some frame is dropped twice in a row, which is what
     grows a client's consecutive-failure streak past the base delay. *)
  arm t [ ("net.wire_drop", Kfault.Prob { seed = 7; ppm = 600_000 }) ];
  let faulty = Workloads.Webserver.run_net ~config:cfg (Core.sys t) in
  Alcotest.(check int) "every connection still completes"
    clean.Workloads.Webserver.n_completed faulty.Workloads.Webserver.n_completed;
  Alcotest.(check string) "byte-identical responses"
    clean.Workloads.Webserver.n_digest faulty.Workloads.Webserver.n_digest;
  Alcotest.(check bool) "retransmits counted" true
    (counter_value t "retry.net_retransmits" >= 1);
  Alcotest.(check bool) "backoff cycles charged" true
    (counter_value t "retry.net_backoff_cycles" >= 1)

(* --- twin determinism (qcheck) ----------------------------------------- *)

let sites =
  [
    "kalloc.kmalloc"; "kalloc.vmalloc"; "blockdev.read_eio";
    "blockdev.read_short"; "net.wire_drop"; "net.recv_short";
    "syscall.eintr"; "syscall.eagain"; "cosy.watchdog_early";
    "ring.partial_enter"; "kopt.cache_invalidate";
  ]

let gen_plan =
  QCheck.Gen.(
    let* site = oneofl sites in
    let* trigger =
      oneof
        [
          map (fun n -> Kfault.Every_nth (1 + n)) (int_bound 30);
          map (fun k -> Kfault.One_shot (1 + k)) (int_bound 30);
          map2
            (fun seed ppm -> Kfault.Prob { seed; ppm = 1 + ppm })
            (int_bound 10_000) (int_bound 400_000);
        ]
    in
    return { Kfault.site; trigger })

let qcheck_twin_determinism =
  QCheck.Test.make ~name:"identical plan, identical twin systems" ~count:6
    (QCheck.make
       ~print:(fun ps ->
         String.concat " " (List.map (Fmt.str "%a" Kfault.pp_plan) ps))
       QCheck.Gen.(list_size (int_range 1 3) gen_plan))
    (fun plans ->
      let a = Resilience.run ~plans () in
      let b = Resilience.run ~plans () in
      a.Resilience.r_cycles = b.Resilience.r_cycles
      && a.Resilience.r_digest = b.Resilience.r_digest
      && a.Resilience.r_errs = b.Resilience.r_errs
      && a.Resilience.r_counts = b.Resilience.r_counts
      && a.Resilience.r_stats = b.Resilience.r_stats)

(* --- the systematic sweep ---------------------------------------------- *)

let test_sweep_no_violations () =
  let s = Resilience.sweep ~max_per_site:3 () in
  let reached =
    List.filter (fun (_, occ, _) -> occ > 0)
      s.Resilience.baseline.Resilience.r_counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 sites reached (got %d)" (List.length reached))
    true
    (List.length reached >= 10);
  Alcotest.(check bool) "sweep explored every reached site" true
    (List.for_all
       (fun (name, _, _) ->
         List.exists
           (fun (r : Resilience.sweep_row) -> r.Resilience.sw_site = name)
           s.Resilience.rows)
       reached);
  List.iter
    (fun (r : Resilience.sweep_row) ->
      if r.Resilience.sw_outcome = Resilience.Violation then
        Alcotest.failf "%s occ %d: %s %s" r.Resilience.sw_site
          r.Resilience.sw_occurrence
          (String.concat " " r.Resilience.sw_errs)
          r.Resilience.sw_detail)
    s.Resilience.rows;
  Alcotest.(check int) "zero violations" 0 s.Resilience.violations

let () =
  Alcotest.run "kfault"
    [
      ( "engine",
        [
          Alcotest.test_case "triggers" `Quick test_triggers;
          Alcotest.test_case "prob streams deterministic" `Quick
            test_prob_deterministic;
          Alcotest.test_case "counting mode and disarm" `Quick
            test_counting_mode_and_disarm;
          Alcotest.test_case "late registration binds plan" `Quick
            test_late_registration_binds_plan;
          Alcotest.test_case "plan specs" `Quick test_plan_specs;
          Alcotest.test_case "sweep points" `Quick test_sweep_points;
        ] );
      ( "zero-impact",
        [
          Alcotest.test_case "disarmed bit-for-bit" `Quick
            test_disarmed_bit_for_bit;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "kmalloc failure is ENOMEM" `Quick
            test_kmalloc_enomem_errno;
          Alcotest.test_case "EINTR restarts transparently" `Quick
            test_eintr_transparent_restart;
          Alcotest.test_case "EINTR storm gives up cleanly" `Quick
            test_eintr_gives_up;
          Alcotest.test_case "ring partial completion" `Quick
            test_ring_partial_progress;
          Alcotest.test_case "kopt invalidation recompiles" `Quick
            test_kopt_invalidation_recompiles;
          Alcotest.test_case "net backoff recovers" `Quick
            test_net_backoff_recovers;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest qcheck_twin_determinism ] );
      ( "sweep",
        [
          Alcotest.test_case "no violations" `Quick test_sweep_no_violations;
        ] );
    ]
