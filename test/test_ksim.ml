(* Unit tests for the machine/kernel substrate. *)

let zero = Ksim.Cost_model.zero

let mk_space ?(page_size = 4096) () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size in
  let space = Ksim.Address_space.create ~name:"t" ~mem ~clock ~cost:zero () in
  (clock, mem, space)

(* --- clock ------------------------------------------------------------- *)

let test_clock () =
  let c = Ksim.Sim_clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Ksim.Sim_clock.now c);
  Ksim.Sim_clock.advance c 100;
  Ksim.Sim_clock.advance c 23;
  Alcotest.(check int) "accumulates" 123 (Ksim.Sim_clock.now c);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Sim_clock.advance: negative cost") (fun () ->
      Ksim.Sim_clock.advance c (-1));
  Ksim.Sim_clock.reset c;
  Alcotest.(check int) "reset" 0 (Ksim.Sim_clock.now c)

let test_copy_cost () =
  let cost = Ksim.Cost_model.default in
  Alcotest.(check int) "zero bytes free" 0 (Ksim.Cost_model.copy_cost cost 0);
  let c1 = Ksim.Cost_model.copy_cost cost 1 in
  let c4096 = Ksim.Cost_model.copy_cost cost 4096 in
  Alcotest.(check bool) "monotone" true (c4096 > c1);
  Alcotest.(check bool) "base charged" true (c1 >= cost.Ksim.Cost_model.copy_base)

(* --- physical memory ---------------------------------------------------- *)

let test_phys_mem () =
  let mem = Ksim.Phys_mem.create ~page_size:256 in
  let f1 = Ksim.Phys_mem.alloc_frame mem in
  let f2 = Ksim.Phys_mem.alloc_frame mem in
  Alcotest.(check bool) "distinct frames" true (f1 <> f2);
  Alcotest.(check int) "live" 2 (Ksim.Phys_mem.live_frames mem);
  Ksim.Phys_mem.write mem ~frame:f1 ~off:10 (Bytes.of_string "hello");
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Ksim.Phys_mem.read mem ~frame:f1 ~off:10 ~len:5));
  Alcotest.(check string) "other frame untouched" "\000\000\000"
    (Bytes.to_string (Ksim.Phys_mem.read mem ~frame:f2 ~off:10 ~len:3));
  Ksim.Phys_mem.free_frame mem f1;
  Alcotest.(check int) "freed" 1 (Ksim.Phys_mem.live_frames mem);
  Alcotest.(check int) "high water" 2 (Ksim.Phys_mem.high_water mem);
  (* freed frames are recycled *)
  let f3 = Ksim.Phys_mem.alloc_frame mem in
  Alcotest.(check int) "recycled" f1 f3

let test_phys_mem_errors () =
  let mem = Ksim.Phys_mem.create ~page_size:64 in
  let f = Ksim.Phys_mem.alloc_frame mem in
  Alcotest.check_raises "write out of frame"
    (Invalid_argument "Phys_mem.write: out of frame") (fun () ->
      Ksim.Phys_mem.write mem ~frame:f ~off:60 (Bytes.of_string "xxxxx"));
  Ksim.Phys_mem.free_frame mem f;
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys_mem.free_frame: double free") (fun () ->
      Ksim.Phys_mem.free_frame mem f)

(* --- address space ------------------------------------------------------ *)

let test_address_space_rw () =
  let _, _, space = mk_space () in
  Ksim.Address_space.map_fresh space ~vpn:10 ~npages:2 ~writable:true;
  let addr = (10 * 4096) + 100 in
  Ksim.Address_space.write_string space ~addr "kernel data";
  Alcotest.(check string) "read back" "kernel data"
    (Ksim.Address_space.read_string space ~addr ~len:11);
  (* spanning a page boundary *)
  let addr2 = (11 * 4096) - 3 in
  Ksim.Address_space.write_string space ~addr:addr2 "abcdef";
  Alcotest.(check string) "cross-page" "abcdef"
    (Ksim.Address_space.read_string space ~addr:addr2 ~len:6)

let test_address_space_int () =
  let _, _, space = mk_space () in
  Ksim.Address_space.map_fresh space ~vpn:1 ~npages:1 ~writable:true;
  let addr = 4096 + 8 in
  Ksim.Address_space.write_int space ~addr 0x1234_5678_9abc;
  Alcotest.(check int) "int round trip" 0x1234_5678_9abc
    (Ksim.Address_space.read_int space ~addr);
  Ksim.Address_space.write_int space ~addr (-42);
  Alcotest.(check int) "negative" (-42) (Ksim.Address_space.read_int space ~addr)

let test_fault_not_present () =
  let _, _, space = mk_space () in
  (try
     ignore (Ksim.Address_space.read_u8 space ~addr:999999);
     Alcotest.fail "expected fault"
   with Ksim.Fault.Fault f ->
     Alcotest.(check bool) "not present" true
       (f.Ksim.Fault.reason = Ksim.Fault.Not_present))

let test_fault_protection () =
  let _, _, space = mk_space () in
  Ksim.Address_space.map_fresh space ~vpn:5 ~npages:1 ~writable:false;
  ignore (Ksim.Address_space.read_u8 space ~addr:(5 * 4096));
  (try
     Ksim.Address_space.write_u8 space ~addr:(5 * 4096) 1;
     Alcotest.fail "expected protection fault"
   with Ksim.Fault.Fault f ->
     Alcotest.(check bool) "protection" true
       (f.Ksim.Fault.reason = Ksim.Fault.Protection))

let test_fault_guardian_and_handler () =
  let _, _, space = mk_space () in
  Ksim.Address_space.map_guardian space ~vpn:7;
  let seen = ref None in
  Ksim.Address_space.push_handler space (fun f ->
      seen := Some f.Ksim.Fault.reason;
      Ksim.Address_space.Emulated);
  (* handler emulates: no exception, writes discarded, reads zero *)
  Ksim.Address_space.write_u8 space ~addr:(7 * 4096) 99;
  Alcotest.(check bool) "guardian seen" true (!seen = Some Ksim.Fault.Guardian);
  Ksim.Address_space.pop_handler space;
  (try
     Ksim.Address_space.write_u8 space ~addr:(7 * 4096) 99;
     Alcotest.fail "expected fault after pop"
   with Ksim.Fault.Fault _ -> ())

let test_segment () =
  let seg = Ksim.Segment.make ~name:"s" ~base:0x1000 ~limit:0x100 () in
  Alcotest.(check bool) "inside" true
    (Ksim.Segment.contains seg ~addr:0x1000 ~len:0x100);
  Alcotest.(check bool) "outside" false
    (Ksim.Segment.contains seg ~addr:0x10ff ~len:2);
  let _, _, space = mk_space () in
  Ksim.Address_space.map_fresh space ~vpn:0 ~npages:4 ~writable:true;
  Ksim.Address_space.set_segment space seg;
  (try
     ignore (Ksim.Address_space.read_u8 space ~addr:0x2000);
     Alcotest.fail "expected segment violation"
   with Ksim.Fault.Fault f ->
     Alcotest.(check bool) "segment violation" true
       (f.Ksim.Fault.reason = Ksim.Fault.Segment_violation));
  (* inside the segment is fine *)
  ignore (Ksim.Address_space.read_u8 space ~addr:0x1010)

let test_tlb () =
  let tlb = Ksim.Tlb.create ~slots:4 () in
  Alcotest.(check bool) "first access misses" false (Ksim.Tlb.access tlb ~vpn:1);
  Alcotest.(check bool) "second hits" true (Ksim.Tlb.access tlb ~vpn:1);
  Alcotest.(check bool) "conflict evicts" false (Ksim.Tlb.access tlb ~vpn:5);
  Alcotest.(check bool) "original evicted" false (Ksim.Tlb.access tlb ~vpn:1);
  Alcotest.(check int) "hits" 1 (Ksim.Tlb.hits tlb);
  Alcotest.(check int) "misses" 3 (Ksim.Tlb.misses tlb)

(* --- allocators --------------------------------------------------------- *)

let mk_kalloc () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space = Ksim.Address_space.create ~name:"k" ~mem ~clock ~cost:zero () in
  Ksim.Kalloc.create ~space ~clock ~cost:zero ()

let test_kmalloc () =
  let ka = mk_kalloc () in
  let a = Ksim.Kalloc.kmalloc ka 100 in
  let b = Ksim.Kalloc.kmalloc ka 100 in
  Alcotest.(check bool) "disjoint" true (b >= a + 100 || a >= b + 100);
  Alcotest.(check int) "live" 2 (Ksim.Kalloc.kmalloc_live_count ka);
  Ksim.Kalloc.kfree ka a;
  Alcotest.(check int) "after free" 1 (Ksim.Kalloc.kmalloc_live_count ka);
  Alcotest.check_raises "double kfree"
    (Invalid_argument "kfree: not a live kmalloc address") (fun () ->
      Ksim.Kalloc.kfree ka a)

let test_vmalloc_guard () =
  let ka = mk_kalloc () in
  let area = Ksim.Kalloc.vmalloc ka ~guard:true ~align_end:true 100 in
  (* end-aligned: buffer end coincides with page end *)
  Alcotest.(check int) "end aligned"
    0 ((area.Ksim.Kalloc.addr + 100) mod 4096);
  Alcotest.(check bool) "guardian present" true
    (area.Ksim.Kalloc.guardian_vpn <> None);
  let stats = Ksim.Kalloc.stats ka in
  Alcotest.(check int) "one page live" 1 stats.Ksim.Kalloc.pages_live;
  Ksim.Kalloc.vfree ka area.Ksim.Kalloc.addr;
  let stats = Ksim.Kalloc.stats ka in
  Alcotest.(check int) "freed" 0 stats.Ksim.Kalloc.pages_live;
  Alcotest.(check int) "high water" 1 stats.Ksim.Kalloc.pages_high_water

let test_vmalloc_stats () =
  let ka = mk_kalloc () in
  let a1 = Ksim.Kalloc.vmalloc ka 80 in
  let a2 = Ksim.Kalloc.vmalloc ka 80 in
  let _ = Ksim.Kalloc.vmalloc ka 8192 in
  let s = Ksim.Kalloc.stats ka in
  Alcotest.(check int) "allocs" 3 s.Ksim.Kalloc.allocs;
  Alcotest.(check int) "pages live" 4 s.Ksim.Kalloc.pages_live;
  Alcotest.(check (float 0.01)) "mean size" ((80. +. 80. +. 8192.) /. 3.)
    s.Ksim.Kalloc.mean_alloc_bytes;
  Ksim.Kalloc.vfree ka a1.Ksim.Kalloc.addr;
  Ksim.Kalloc.vfree ka a2.Ksim.Kalloc.addr

(* --- sync primitives ---------------------------------------------------- *)

let test_spinlock () =
  let l = Ksim.Spinlock.create "l" in
  Ksim.Spinlock.lock l;
  Alcotest.(check bool) "locked" true (Ksim.Spinlock.is_locked l);
  Ksim.Spinlock.unlock l;
  Alcotest.(check bool) "unlocked" false (Ksim.Spinlock.is_locked l);
  Ksim.Spinlock.lock ~pid:3 l;
  (try
     Ksim.Spinlock.lock ~pid:3 l;
     Alcotest.fail "expected deadlock"
   with Ksim.Spinlock.Deadlock _ -> ());
  Ksim.Spinlock.unlock l;
  (try
     Ksim.Spinlock.unlock l;
     Alcotest.fail "expected unlock-of-free"
   with Ksim.Spinlock.Deadlock _ -> ());
  Alcotest.(check int) "acquisitions" 2 (Ksim.Spinlock.acquisitions l)

let test_with_lock_releases_on_exn () =
  let l = Ksim.Spinlock.create "l" in
  (try
     Ksim.Spinlock.with_lock l (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "released" false (Ksim.Spinlock.is_locked l)

let test_refcount () =
  let r = Ksim.Refcount.create ~initial:1 "r" in
  Ksim.Refcount.get r;
  Alcotest.(check int) "count" 2 (Ksim.Refcount.count r);
  Alcotest.(check bool) "not zero" false (Ksim.Refcount.put r);
  Alcotest.(check bool) "zero" true (Ksim.Refcount.put r);
  (try
     ignore (Ksim.Refcount.put r);
     Alcotest.fail "expected underflow"
   with Ksim.Refcount.Underflow _ -> ())

let test_semaphore () =
  let s = Ksim.Semaphore.create ~initial:2 "s" in
  Ksim.Semaphore.down s;
  Ksim.Semaphore.down s;
  (try
     Ksim.Semaphore.down s;
     Alcotest.fail "expected would-block"
   with Ksim.Semaphore.Would_block _ -> ());
  Ksim.Semaphore.up s;
  Alcotest.(check bool) "try after up" true (Ksim.Semaphore.try_down s);
  Alcotest.(check bool) "try empty" false (Ksim.Semaphore.try_down s)

let test_instrument_events () =
  let seen = ref [] in
  Ksim.Instrument.log := (fun ev -> seen := ev :: !seen);
  Ksim.Instrument.enabled := true;
  let l = Ksim.Spinlock.create "dl" in
  Ksim.Spinlock.lock ~file:"f.ml" ~line:3 l;
  Ksim.Spinlock.unlock l;
  Ksim.Instrument.enabled := false;
  Ksim.Instrument.log := (fun _ -> ());
  Alcotest.(check int) "two events" 2 (List.length !seen);
  match List.rev !seen with
  | [ a; b ] ->
      Alcotest.(check bool) "lock kind" true (a.Ksim.Instrument.kind = Ksim.Instrument.Lock);
      Alcotest.(check bool) "unlock kind" true (b.Ksim.Instrument.kind = Ksim.Instrument.Unlock);
      Alcotest.(check string) "file" "f.ml" a.Ksim.Instrument.file
  | _ -> Alcotest.fail "bad events"

(* --- scheduler / kernel ------------------------------------------------- *)

let test_scheduler_preemption () =
  let clock = Ksim.Sim_clock.create () in
  let cost = { zero with Ksim.Cost_model.timeslice = 100; context_switch = 1 } in
  let sched = Ksim.Scheduler.create ~clock ~cost () in
  let p1 = Ksim.Scheduler.spawn sched ~name:"a" in
  let _p2 = Ksim.Scheduler.spawn sched ~name:"b" in
  Alcotest.(check int) "p1 running" p1.Ksim.Kproc.pid
    (Ksim.Scheduler.current sched).Ksim.Kproc.pid;
  Ksim.Sim_clock.advance clock 150;
  Ksim.Scheduler.checkpoint sched;
  Alcotest.(check int) "preempted once" 1 (Ksim.Scheduler.preemptions sched);
  Alcotest.(check bool) "switched away" true
    ((Ksim.Scheduler.current sched).Ksim.Kproc.pid <> p1.Ksim.Kproc.pid)

let test_smp_placement_and_clocks () =
  let clock = Ksim.Sim_clock.create () in
  let sched = Ksim.Scheduler.create ~clock ~cost:zero ~ncpus:2 () in
  (* least-loaded placement spreads processes across the CPUs *)
  let procs = List.init 4 (fun i -> Ksim.Scheduler.spawn sched ~name:(Printf.sprintf "p%d" i)) in
  let on_cpu c =
    List.length (List.filter (fun p -> p.Ksim.Kproc.cpu = c) procs)
  in
  Alcotest.(check int) "two on cpu0" 2 (on_cpu 0);
  Alcotest.(check int) "two on cpu1" 2 (on_cpu 1);
  (* run_on credits the global-clock delta to that CPU's local clock *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () -> Ksim.Sim_clock.advance clock 100);
  Ksim.Scheduler.run_on sched ~cpu:1 (fun () -> Ksim.Sim_clock.advance clock 250);
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () -> Ksim.Sim_clock.advance clock 50);
  Alcotest.(check int) "cpu0 time" 150 (Ksim.Scheduler.cpu_time sched 0);
  Alcotest.(check int) "cpu1 time" 250 (Ksim.Scheduler.cpu_time sched 1);
  Alcotest.(check int) "makespan is busiest cpu" 250 (Ksim.Scheduler.makespan sched);
  (* local_now tracks the active CPU mid-slice *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 30;
      Alcotest.(check int) "local_now mid-slice" 180 (Ksim.Scheduler.local_now sched))

let test_smp_timeslice_per_cpu () =
  let clock = Ksim.Sim_clock.create () in
  let cost = { zero with Ksim.Cost_model.timeslice = 100; context_switch = 1 } in
  let sched = Ksim.Scheduler.create ~clock ~cost ~ncpus:2 () in
  let a = Ksim.Scheduler.spawn ~cpu:0 sched ~name:"a" in
  let _b = Ksim.Scheduler.spawn ~cpu:0 sched ~name:"b" in
  let _c = Ksim.Scheduler.spawn ~cpu:1 sched ~name:"c" in
  (* burn a timeslice on cpu0: its runqueue rotates a -> b *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 150;
      Ksim.Scheduler.checkpoint sched;
      Alcotest.(check bool) "cpu0 rotated" true
        ((Ksim.Scheduler.current sched).Ksim.Kproc.pid <> a.Ksim.Kproc.pid));
  Alcotest.(check int) "one preemption" 1 (Ksim.Scheduler.preemptions sched);
  (* cpu1's lone process is unaffected: nothing to rotate to *)
  Ksim.Scheduler.run_on sched ~cpu:1 (fun () ->
      Ksim.Sim_clock.advance clock 150;
      Ksim.Scheduler.checkpoint sched;
      Alcotest.(check string) "cpu1 keeps c" "c"
        (Ksim.Scheduler.current sched).Ksim.Kproc.name)

let test_kill_last_respawns_init () =
  let clock = Ksim.Sim_clock.create () in
  let sched = Ksim.Scheduler.create ~clock ~cost:zero () in
  let p = Ksim.Scheduler.spawn sched ~name:"only" in
  Alcotest.(check int) "one process" 1 (Ksim.Scheduler.process_count sched);
  Ksim.Scheduler.kill sched p;
  (* the machine always runs something *)
  Alcotest.(check int) "respawned" 1 (Ksim.Scheduler.process_count sched);
  Alcotest.(check string) "it is init" "init"
    (Ksim.Scheduler.current sched).Ksim.Kproc.name

let mk_lock_ctx ?(ncpus = 2) () =
  let clock = Ksim.Sim_clock.create () in
  let cost =
    { zero with
      Ksim.Cost_model.lock_hold = 1_000;
      spin_cap = 10_000;
      cacheline_bounce = 0 }
  in
  let sched = Ksim.Scheduler.create ~clock ~cost ~ncpus () in
  ( clock,
    sched,
    {
      Ksim.Spinlock.sched;
      clock;
      cost;
      stats = Kstats.create ();
      registry = Ksim.Spinlock.new_registry ();
    } )

let test_spinlock_smp_contention () =
  let clock, sched, ctx = mk_lock_ctx () in
  let l = Ksim.Spinlock.create ~ctx "dl" in
  (* cpu0 holds the lock over [100, 1100) in parallel time *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 100;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  (* cpu1 arrives at local time 500 — inside cpu0's hold window *)
  Ksim.Scheduler.run_on sched ~cpu:1 (fun () ->
      Ksim.Sim_clock.advance clock 500;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  Alcotest.(check int) "contended" 1 (Ksim.Spinlock.contended l);
  (* waited out the remainder of cpu0's hold: 1100 - 500 *)
  Alcotest.(check int) "spin cycles" 600 (Ksim.Spinlock.spin_cycles l);
  (* cpu1's clock advanced past cpu0's release plus its own hold *)
  Alcotest.(check int) "cpu1 local time" 2100 (Ksim.Scheduler.cpu_time sched 1);
  (* a later arrival on cpu0 after everything drained is uncontended *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 5_000;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  Alcotest.(check int) "still one contention" 1 (Ksim.Spinlock.contended l)

let test_spinlock_lagging_cpu_owes_nothing () =
  let clock, sched, ctx = mk_lock_ctx () in
  let l = Ksim.Spinlock.create ~ctx "dl" in
  (* cpu0 races far ahead (say, past a long disk wait) and takes the
     lock late in parallel time *)
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 1_000_000;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  (* cpu1 arrives much earlier in wall time: the lock was free then *)
  Ksim.Scheduler.run_on sched ~cpu:1 (fun () ->
      Ksim.Sim_clock.advance clock 100;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  Alcotest.(check int) "no contention" 0 (Ksim.Spinlock.contended l);
  Alcotest.(check int) "no spin" 0 (Ksim.Spinlock.spin_cycles l)

let test_spinlock_uniprocessor_inert () =
  let clock, sched, ctx = mk_lock_ctx ~ncpus:1 () in
  let l = Ksim.Spinlock.create ~ctx "dl" in
  Ksim.Scheduler.run_on sched ~cpu:0 (fun () ->
      Ksim.Sim_clock.advance clock 100;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l;
      Ksim.Spinlock.lock l;
      Ksim.Spinlock.unlock l);
  Alcotest.(check int) "no contention" 0 (Ksim.Spinlock.contended l);
  (* no lock_hold charge either: the clock saw only our own advance *)
  Alcotest.(check int) "no hold charge" 100 (Ksim.Sim_clock.now clock);
  Alcotest.(check int) "acquisitions counted" 2 (Ksim.Spinlock.acquisitions l)

let test_kernel_boundary () =
  let k = Ksim.Kernel.create () in
  Alcotest.(check bool) "user mode" true (Ksim.Kernel.mode k = Ksim.Kernel.User);
  Ksim.Kernel.enter_kernel k;
  Alcotest.(check bool) "kernel mode" true
    (Ksim.Kernel.mode k = Ksim.Kernel.Kernel_mode);
  (try
     Ksim.Kernel.enter_kernel k;
     Alcotest.fail "double enter"
   with Ksim.Kernel.Kernel_mode_violation _ -> ());
  Ksim.Kernel.charge_copy_from_user k 100;
  Ksim.Kernel.exit_kernel k;
  Alcotest.(check int) "one crossing" 1 (Ksim.Kernel.crossings k);
  Alcotest.(check int) "bytes in" 100 (Ksim.Kernel.bytes_from_user k);
  try
    Ksim.Kernel.charge_copy_to_user k 1;
    Alcotest.fail "copy in user mode"
  with Ksim.Kernel.Kernel_mode_violation _ -> ()

let test_kernel_times_io_split () =
  let k = Ksim.Kernel.create () in
  let (), t =
    Ksim.Kernel.timed k (fun () ->
        Ksim.Kernel.charge_user k 1_000;
        Ksim.Kernel.enter_kernel k;
        Ksim.Kernel.charge_kernel k 2_000;
        Ksim.Kernel.charge_io k 50_000;
        Ksim.Kernel.exit_kernel k)
  in
  Alcotest.(check int) "utime" 1_000 t.Ksim.Kernel.utime;
  (* stime = entry + kernel cpu + exit, excluding the io wait *)
  let cost = Ksim.Kernel.cost k in
  Alcotest.(check int) "stime excludes io"
    (cost.Ksim.Cost_model.syscall_entry + 2_000 + cost.Ksim.Cost_model.syscall_exit)
    t.Ksim.Kernel.stime;
  Alcotest.(check bool) "elapsed includes io" true (t.Ksim.Kernel.elapsed > 50_000)

let test_irq_balance () =
  let k = Ksim.Kernel.create () in
  Ksim.Kernel.irq_disable k;
  Ksim.Kernel.irq_disable k;
  Alcotest.(check int) "depth" 2 (Ksim.Kernel.irq_depth k);
  Ksim.Kernel.irq_enable k;
  Ksim.Kernel.irq_enable k;
  try
    Ksim.Kernel.irq_enable k;
    Alcotest.fail "unbalanced"
  with Ksim.Kernel.Irq_unbalanced -> ()

let test_user_alloc () =
  let k = Ksim.Kernel.create () in
  let a = Ksim.Kernel.user_alloc k 10_000 in
  let space = Ksim.Kernel.uspace k in
  Ksim.Address_space.write_string space ~addr:a "user!";
  Alcotest.(check string) "user mem rw" "user!"
    (Ksim.Address_space.read_string space ~addr:a ~len:5)

(* --- qcheck: kmalloc/vmalloc invariants --------------------------------- *)

let qcheck_kalloc =
  QCheck.Test.make ~name:"kalloc random alloc/free keeps counts consistent"
    ~count:100
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let ka = mk_kalloc () in
      let live_vm = ref [] in
      let live_km = ref [] in
      List.iter
        (fun (vm, size) ->
          let size = 1 + (size mod 9000) in
          if vm then begin
            let a = Ksim.Kalloc.vmalloc ka ~guard:true size in
            live_vm := a.Ksim.Kalloc.addr :: !live_vm
          end
          else live_km := Ksim.Kalloc.kmalloc ka size :: !live_km)
        ops;
      let s = Ksim.Kalloc.stats ka in
      let ok1 = s.Ksim.Kalloc.live_areas = List.length !live_vm in
      let ok2 = Ksim.Kalloc.kmalloc_live_count ka = List.length !live_km in
      List.iter (Ksim.Kalloc.vfree ka) !live_vm;
      List.iter (Ksim.Kalloc.kfree ka) !live_km;
      let s = Ksim.Kalloc.stats ka in
      ok1 && ok2 && s.Ksim.Kalloc.pages_live = 0
      && Ksim.Kalloc.kmalloc_live_count ka = 0)

let qcheck_address_space =
  QCheck.Test.make ~name:"address space write/read round trips" ~count:100
    QCheck.(pair (int_bound 8000) (string_of_size Gen.(int_range 1 64)))
    (fun (off, s) ->
      QCheck.assume (String.length s > 0);
      let _, _, space = mk_space () in
      Ksim.Address_space.map_fresh space ~vpn:0 ~npages:4 ~writable:true;
      Ksim.Address_space.write_string space ~addr:off s;
      Ksim.Address_space.read_string space ~addr:off ~len:(String.length s) = s)

let () =
  Alcotest.run "ksim"
    [
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock;
          Alcotest.test_case "copy cost" `Quick test_copy_cost;
        ] );
      ( "phys-mem",
        [
          Alcotest.test_case "alloc/free/rw" `Quick test_phys_mem;
          Alcotest.test_case "errors" `Quick test_phys_mem_errors;
        ] );
      ( "address-space",
        [
          Alcotest.test_case "read/write" `Quick test_address_space_rw;
          Alcotest.test_case "ints" `Quick test_address_space_int;
          Alcotest.test_case "not present" `Quick test_fault_not_present;
          Alcotest.test_case "protection" `Quick test_fault_protection;
          Alcotest.test_case "guardian+handler" `Quick test_fault_guardian_and_handler;
          Alcotest.test_case "segments" `Quick test_segment;
          Alcotest.test_case "tlb" `Quick test_tlb;
          QCheck_alcotest.to_alcotest qcheck_address_space;
        ] );
      ( "allocators",
        [
          Alcotest.test_case "kmalloc" `Quick test_kmalloc;
          Alcotest.test_case "vmalloc guard" `Quick test_vmalloc_guard;
          Alcotest.test_case "vmalloc stats" `Quick test_vmalloc_stats;
          QCheck_alcotest.to_alcotest qcheck_kalloc;
        ] );
      ( "sync",
        [
          Alcotest.test_case "spinlock" `Quick test_spinlock;
          Alcotest.test_case "with_lock exn" `Quick test_with_lock_releases_on_exn;
          Alcotest.test_case "refcount" `Quick test_refcount;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "instrument events" `Quick test_instrument_events;
        ] );
      ( "smp",
        [
          Alcotest.test_case "placement+clocks" `Quick test_smp_placement_and_clocks;
          Alcotest.test_case "timeslice per cpu" `Quick test_smp_timeslice_per_cpu;
          Alcotest.test_case "kill last respawns init" `Quick test_kill_last_respawns_init;
          Alcotest.test_case "spinlock contention" `Quick test_spinlock_smp_contention;
          Alcotest.test_case "lagging cpu free" `Quick test_spinlock_lagging_cpu_owes_nothing;
          Alcotest.test_case "uniprocessor inert" `Quick test_spinlock_uniprocessor_inert;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "preemption" `Quick test_scheduler_preemption;
          Alcotest.test_case "boundary" `Quick test_kernel_boundary;
          Alcotest.test_case "times io split" `Quick test_kernel_times_io_split;
          Alcotest.test_case "irq balance" `Quick test_irq_balance;
          Alcotest.test_case "user alloc" `Quick test_user_alloc;
        ] );
    ]
