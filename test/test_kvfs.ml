(* Tests for the VFS substrate: memfs, block device, dcache, vfs layer,
   wrapfs, journalfs. *)

let zero_config =
  { Ksim.Kernel.default_config with cost = Ksim.Cost_model.zero }

(* Enable the registry: Dcache/Block_dev stats are derived from kstats. *)
let mk_kernel () =
  let kernel = Ksim.Kernel.create ~config:zero_config () in
  Kstats.set_enabled (Ksim.Kernel.stats kernel) true;
  kernel

let errno = Alcotest.testable Kvfs.Vtypes.pp_errno ( = )

let check_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %a" msg Kvfs.Vtypes.pp_errno e

let check_err msg expected = function
  | Ok _ -> Alcotest.failf "%s: expected error" msg
  | Error e -> Alcotest.check errno msg expected e

(* --- memfs --------------------------------------------------------------- *)

let test_memfs_create_lookup () =
  let fs = Kvfs.Memfs.create (mk_kernel ()) in
  let root = Kvfs.Memfs.root_ino in
  let ino = check_ok "create" (Kvfs.Memfs.create_node fs ~dir:root ~name:"a" Kvfs.Vtypes.Regular) in
  Alcotest.(check int) "lookup finds it" ino
    (check_ok "lookup" (Kvfs.Memfs.lookup fs ~dir:root "a"));
  check_err "missing" Kvfs.Vtypes.ENOENT (Kvfs.Memfs.lookup fs ~dir:root "b");
  check_err "duplicate" Kvfs.Vtypes.EEXIST
    (Kvfs.Memfs.create_node fs ~dir:root ~name:"a" Kvfs.Vtypes.Regular);
  check_err "bad name" Kvfs.Vtypes.EINVAL
    (Kvfs.Memfs.create_node fs ~dir:root ~name:"x/y" Kvfs.Vtypes.Regular);
  check_err "lookup in file" Kvfs.Vtypes.ENOTDIR (Kvfs.Memfs.lookup fs ~dir:ino "z")

let test_memfs_rw () =
  let fs = Kvfs.Memfs.create (mk_kernel ()) in
  let root = Kvfs.Memfs.root_ino in
  let ino = check_ok "create" (Kvfs.Memfs.create_node fs ~dir:root ~name:"f" Kvfs.Vtypes.Regular) in
  let n = check_ok "write" (Kvfs.Memfs.write fs ~ino ~off:0 ~data:(Bytes.of_string "hello world")) in
  Alcotest.(check int) "wrote 11" 11 n;
  Alcotest.(check string) "read middle" "lo wo"
    (Bytes.to_string (check_ok "read" (Kvfs.Memfs.read fs ~ino ~off:3 ~len:5)));
  Alcotest.(check string) "read past eof truncated" "world"
    (Bytes.to_string (check_ok "read" (Kvfs.Memfs.read fs ~ino ~off:6 ~len:100)));
  (* sparse write *)
  ignore (check_ok "sparse" (Kvfs.Memfs.write fs ~ino ~off:20 ~data:(Bytes.of_string "end")));
  let st = check_ok "stat" (Kvfs.Memfs.getattr fs ~ino) in
  Alcotest.(check int) "size" 23 st.Kvfs.Vtypes.st_size;
  (* truncate down then up *)
  ignore (check_ok "trunc" (Kvfs.Memfs.truncate fs ~ino ~size:5));
  let st = check_ok "stat" (Kvfs.Memfs.getattr fs ~ino) in
  Alcotest.(check int) "shrunk" 5 st.Kvfs.Vtypes.st_size;
  ignore (check_ok "trunc up" (Kvfs.Memfs.truncate fs ~ino ~size:10));
  Alcotest.(check string) "zero filled" "\000\000"
    (Bytes.to_string (check_ok "read" (Kvfs.Memfs.read fs ~ino ~off:8 ~len:2)))

let test_memfs_unlink_rename () =
  let fs = Kvfs.Memfs.create (mk_kernel ()) in
  let root = Kvfs.Memfs.root_ino in
  let sub = check_ok "mkdir" (Kvfs.Memfs.create_node fs ~dir:root ~name:"d" Kvfs.Vtypes.Directory) in
  ignore (check_ok "create" (Kvfs.Memfs.create_node fs ~dir:sub ~name:"f" Kvfs.Vtypes.Regular));
  check_err "rmdir nonempty" Kvfs.Vtypes.ENOTEMPTY
    (Kvfs.Memfs.unlink fs ~dir:root ~name:"d");
  ignore (check_ok "rename" (Kvfs.Memfs.rename fs ~src_dir:sub ~src:"f" ~dst_dir:root ~dst:"g"));
  check_ok "rmdir now empty" (Kvfs.Memfs.unlink fs ~dir:root ~name:"d");
  ignore (check_ok "unlink g" (Kvfs.Memfs.unlink fs ~dir:root ~name:"g"));
  let entries = check_ok "readdir" (Kvfs.Memfs.readdir fs ~dir:root) in
  Alcotest.(check int) "root empty" 0 (List.length entries)

let test_memfs_readdir_order () =
  let fs = Kvfs.Memfs.create (mk_kernel ()) in
  let root = Kvfs.Memfs.root_ino in
  List.iter
    (fun n -> ignore (check_ok "create" (Kvfs.Memfs.create_node fs ~dir:root ~name:n Kvfs.Vtypes.Regular)))
    [ "c"; "a"; "b" ];
  let names = List.map (fun d -> d.Kvfs.Vtypes.d_name)
      (check_ok "readdir" (Kvfs.Memfs.readdir fs ~dir:root)) in
  Alcotest.(check (list string)) "insertion order" [ "c"; "a"; "b" ] names

(* --- block device --------------------------------------------------------- *)

let test_block_dev_cache () =
  let kernel = Ksim.Kernel.create () in
  Kstats.set_enabled (Ksim.Kernel.stats kernel) true;
  let dev = Kvfs.Block_dev.create ~cache_blocks:8 kernel in
  let t0 = Ksim.Kernel.now kernel in
  Kvfs.Block_dev.read_block dev 5;
  let cold = Ksim.Kernel.now kernel - t0 in
  Alcotest.(check bool) "cold read costs" true (cold > 0);
  let t1 = Ksim.Kernel.now kernel in
  Kvfs.Block_dev.read_block dev 5;
  Alcotest.(check int) "hot read free" 0 (Ksim.Kernel.now kernel - t1);
  let s = Kvfs.Block_dev.stats dev in
  Alcotest.(check int) "one miss" 1 s.Kvfs.Block_dev.misses;
  Alcotest.(check int) "one hit" 1 s.Kvfs.Block_dev.hits

(* --- dcache ---------------------------------------------------------------- *)

let test_dcache () =
  (* dcache locking requires the instrument hook not to explode *)
  let d = Kvfs.Dcache.create () in
  Alcotest.(check (option int)) "miss" None (Kvfs.Dcache.lookup d ~dir:1 ~name:"x");
  Kvfs.Dcache.insert d ~dir:1 ~name:"x" ~ino:42;
  Alcotest.(check (option int)) "hit" (Some 42) (Kvfs.Dcache.lookup d ~dir:1 ~name:"x");
  Kvfs.Dcache.invalidate d ~dir:1 ~name:"x";
  Alcotest.(check (option int)) "invalidated" None (Kvfs.Dcache.lookup d ~dir:1 ~name:"x");
  let s = Kvfs.Dcache.stats d in
  Alcotest.(check int) "hits" 1 s.Kvfs.Dcache.hits;
  Alcotest.(check int) "misses" 2 s.Kvfs.Dcache.misses;
  Alcotest.(check bool) "lock was taken" true (s.Kvfs.Dcache.lock_acquisitions >= 4)

let test_block_dev_second_chance () =
  (* hot set + one-pass scan: second-chance keeps the referenced hot
     blocks; FIFO evicts whatever is oldest, hot or not *)
  let run policy =
    let kernel = mk_kernel () in
    let dev = Kvfs.Block_dev.create ~cache_blocks:8 ~policy kernel in
    for b = 0 to 3 do Kvfs.Block_dev.read_block dev b done;
    for round = 1 to 4 do
      for b = 0 to 3 do Kvfs.Block_dev.read_block dev b done;
      (* scan blocks the cache has no room to keep *)
      for s = 0 to 3 do Kvfs.Block_dev.read_block dev (100 + (4 * round) + s) done
    done;
    Kvfs.Block_dev.stats dev
  in
  let fifo = run Kvfs.Block_dev.Fifo in
  let sc = run Kvfs.Block_dev.Second_chance in
  Alcotest.(check bool) "second chance hits more" true
    (sc.Kvfs.Block_dev.hits > fifo.Kvfs.Block_dev.hits);
  Alcotest.(check bool) "second chance evicts no more" true
    (sc.Kvfs.Block_dev.evictions <= fifo.Kvfs.Block_dev.evictions);
  Alcotest.(check bool) "evictions happened" true (fifo.Kvfs.Block_dev.evictions > 0)

let test_dcache_sharded () =
  let d = Kvfs.Dcache.create ~shards:8 () in
  Alcotest.(check int) "shards" 8 (Kvfs.Dcache.nshards d);
  (* enough entries to land in every shard *)
  for i = 0 to 199 do
    Kvfs.Dcache.insert d ~dir:(i mod 7) ~name:(Printf.sprintf "f%d" i) ~ino:i
  done;
  for i = 0 to 199 do
    Alcotest.(check (option int)) "sharded hit" (Some i)
      (Kvfs.Dcache.lookup d ~dir:(i mod 7) ~name:(Printf.sprintf "f%d" i))
  done;
  Kvfs.Dcache.invalidate d ~dir:3 ~name:"f3";
  Alcotest.(check (option int)) "invalidated" None
    (Kvfs.Dcache.lookup d ~dir:3 ~name:"f3");
  Alcotest.(check (option int)) "others survive" (Some 10)
    (Kvfs.Dcache.lookup d ~dir:3 ~name:"f10");
  Kvfs.Dcache.clear d;
  Alcotest.(check (option int)) "cleared" None
    (Kvfs.Dcache.lookup d ~dir:0 ~name:"f0")

let test_dcache_sharded_lockless_reads () =
  let d = Kvfs.Dcache.create ~shards:8 () in
  Kvfs.Dcache.insert d ~dir:1 ~name:"x" ~ino:42;
  let writes = Kvfs.Dcache.acquisitions d in
  Alcotest.(check bool) "insert took a bucket lock" true (writes > 0);
  for _ = 1 to 50 do
    ignore (Kvfs.Dcache.lookup d ~dir:1 ~name:"x")
  done;
  (* seqcount fast path: sharded-mode lookups take no lock at all *)
  Alcotest.(check int) "reads are lockless" writes (Kvfs.Dcache.acquisitions d);
  (* the global-lock compat mode does lock its reads *)
  let g = Kvfs.Dcache.create ~shards:1 () in
  Kvfs.Dcache.insert g ~dir:1 ~name:"x" ~ino:42;
  let w = Kvfs.Dcache.acquisitions g in
  ignore (Kvfs.Dcache.lookup g ~dir:1 ~name:"x");
  Alcotest.(check int) "global mode locks reads" (w + 1) (Kvfs.Dcache.acquisitions g)

(* --- vfs -------------------------------------------------------------------- *)

let mk_vfs () =
  let kernel = mk_kernel () in
  (kernel, Kvfs.Vfs.create kernel)

let test_vfs_paths () =
  let _, vfs = mk_vfs () in
  ignore (check_ok "mkdir a" (Kvfs.Vfs.mkdir vfs "/a"));
  ignore (check_ok "mkdir a/b" (Kvfs.Vfs.mkdir vfs "/a/b"));
  let h = check_ok "create deep" (Kvfs.Vfs.open_file vfs "/a/b/f.txt" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "data")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let st = check_ok "stat" (Kvfs.Vfs.stat vfs "/a/b/f.txt") in
  Alcotest.(check int) "size" 4 st.Kvfs.Vtypes.st_size;
  check_err "missing path" Kvfs.Vtypes.ENOENT (Kvfs.Vfs.stat vfs "/a/zz/f");
  (* trailing and duplicate slashes *)
  ignore (check_ok "odd path" (Kvfs.Vfs.stat vfs "//a//b//f.txt"))

let test_vfs_fd_semantics () =
  let _, vfs = mk_vfs () in
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "0123456789")));
  (* lseek *)
  let pos = check_ok "seek set" (Kvfs.Vfs.lseek vfs h ~off:2 ~whence:Kvfs.Vfs.SEEK_SET) in
  Alcotest.(check int) "pos" 2 pos;
  Alcotest.(check string) "read from 2" "234"
    (Bytes.to_string (check_ok "read" (Kvfs.Vfs.read vfs h 3)));
  let pos = check_ok "seek cur" (Kvfs.Vfs.lseek vfs h ~off:(-1) ~whence:Kvfs.Vfs.SEEK_CUR) in
  Alcotest.(check int) "cur" 4 pos;
  let pos = check_ok "seek end" (Kvfs.Vfs.lseek vfs h ~off:(-2) ~whence:Kvfs.Vfs.SEEK_END) in
  Alcotest.(check int) "end" 8 pos;
  check_err "negative seek" Kvfs.Vtypes.EINVAL
    (Kvfs.Vfs.lseek vfs h ~off:(-100) ~whence:Kvfs.Vfs.SEEK_SET);
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  check_err "read after close" Kvfs.Vtypes.EBADF (Kvfs.Vfs.read vfs h 1);
  check_err "double close" Kvfs.Vtypes.EBADF (Kvfs.Vfs.close vfs h)

let test_vfs_open_flags () =
  let _, vfs = mk_vfs () in
  check_err "no O_CREAT" Kvfs.Vtypes.ENOENT
    (Kvfs.Vfs.open_file vfs "/nope" [ Kvfs.Vfs.O_RDONLY ]);
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "abcdef")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  (* O_TRUNC empties *)
  let h = check_ok "trunc" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_TRUNC ]) in
  let st = check_ok "fstat" (Kvfs.Vfs.fstat vfs h) in
  Alcotest.(check int) "truncated" 0 st.Kvfs.Vtypes.st_size;
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  (* O_APPEND positions at end *)
  let h = check_ok "w" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "xy")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let h = check_ok "a" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_APPEND ]) in
  ignore (check_ok "append" (Kvfs.Vfs.write vfs h (Bytes.of_string "z")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let st = check_ok "stat" (Kvfs.Vfs.stat vfs "/f") in
  Alcotest.(check int) "appended" 3 st.Kvfs.Vtypes.st_size;
  (* opening a directory for writing fails *)
  ignore (check_ok "mkdir" (Kvfs.Vfs.mkdir vfs "/d"));
  check_err "dir write" Kvfs.Vtypes.EISDIR
    (Kvfs.Vfs.open_file vfs "/d" [ Kvfs.Vfs.O_RDWR ])

let test_vfs_mounts () =
  let kernel, vfs = mk_vfs () in
  ignore (check_ok "mkdir" (Kvfs.Vfs.mkdir vfs "/mnt"));
  let sub = Kvfs.Memfs.ops (Kvfs.Memfs.create kernel) in
  Kvfs.Vfs.mount vfs ~prefix:"/mnt" ~fs:sub;
  let h = check_ok "create on mount" (Kvfs.Vfs.open_file vfs "/mnt/x" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "inner")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  (* the file lives on the mounted fs, not the root fs *)
  let entries = check_ok "readdir" (Kvfs.Vfs.readdir vfs "/mnt") in
  Alcotest.(check (list string)) "on mount" [ "x" ]
    (List.map (fun d -> d.Kvfs.Vtypes.d_name) entries);
  ignore (check_ok "umount" (Kvfs.Vfs.umount vfs ~prefix:"/mnt"));
  let entries = check_ok "readdir root /mnt" (Kvfs.Vfs.readdir vfs "/mnt") in
  Alcotest.(check int) "root mnt empty" 0 (List.length entries)

let test_vfs_dcache_integration () =
  let _, vfs = mk_vfs () in
  ignore (check_ok "mkdir" (Kvfs.Vfs.mkdir vfs "/a"));
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/a/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let d = Kvfs.Vfs.dcache vfs in
  let before = (Kvfs.Dcache.stats d).Kvfs.Dcache.hits in
  ignore (check_ok "stat 1" (Kvfs.Vfs.stat vfs "/a/f"));
  ignore (check_ok "stat 2" (Kvfs.Vfs.stat vfs "/a/f"));
  let after = (Kvfs.Dcache.stats d).Kvfs.Dcache.hits in
  Alcotest.(check bool) "cached lookups" true (after > before);
  (* unlink invalidates *)
  ignore (check_ok "unlink" (Kvfs.Vfs.unlink vfs "/a/f"));
  check_err "gone" Kvfs.Vtypes.ENOENT (Kvfs.Vfs.stat vfs "/a/f")

(* --- wrapfs ------------------------------------------------------------------ *)

let mk_wrapfs ?(kernel = Ksim.Kernel.create ~config:zero_config ()) () =
  let lower = Kvfs.Memfs.ops (Kvfs.Memfs.create kernel) in
  let w = Kvfs.Wrapfs.create ~allocator:(Kvfs.Wrapfs.kmalloc_allocator kernel) lower in
  (kernel, w, Kvfs.Vfs.create ~root_fs:(Kvfs.Wrapfs.ops w) kernel)

let test_wrapfs_passthrough () =
  let _, w, vfs = mk_wrapfs () in
  ignore (check_ok "mkdir" (Kvfs.Vfs.mkdir vfs "/d"));
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/d/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "through the layers")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let h = check_ok "open" (Kvfs.Vfs.open_file vfs "/d/f" [ Kvfs.Vfs.O_RDONLY ]) in
  Alcotest.(check string) "data intact" "through the layers"
    (Bytes.to_string (check_ok "read" (Kvfs.Vfs.read vfs h 100)));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let s = Kvfs.Wrapfs.stats w in
  Alcotest.(check bool) "allocated private data" true (s.Kvfs.Wrapfs.live_private > 0);
  Alcotest.(check bool) "copied names" true (s.Kvfs.Wrapfs.name_copies > 0);
  Alcotest.(check bool) "staged pages" true (s.Kvfs.Wrapfs.page_copies > 0)

let test_wrapfs_private_freed_on_unlink () =
  let _, w, vfs = mk_wrapfs () in
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let before = (Kvfs.Wrapfs.stats w).Kvfs.Wrapfs.live_private in
  ignore (check_ok "unlink" (Kvfs.Vfs.unlink vfs "/f"));
  let after = (Kvfs.Wrapfs.stats w).Kvfs.Wrapfs.live_private in
  Alcotest.(check bool) "private data dropped" true (after < before)

(* --- journalfs ---------------------------------------------------------------- *)

let test_journalfs_ops () =
  let kernel = mk_kernel () in
  let j = Kvfs.Journalfs.create kernel in
  let vfs = Kvfs.Vfs.create ~root_fs:(Kvfs.Journalfs.ops j) kernel in
  let h = check_ok "create" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string "journaled")));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  let h = check_ok "open" (Kvfs.Vfs.open_file vfs "/f" [ Kvfs.Vfs.O_RDONLY ]) in
  Alcotest.(check string) "data" "journaled"
    (Bytes.to_string (check_ok "read" (Kvfs.Vfs.read vfs h 100)));
  ignore (check_ok "close" (Kvfs.Vfs.close vfs h));
  ignore (check_ok "unlink" (Kvfs.Vfs.unlink vfs "/f"));
  let s = Kvfs.Journalfs.stats j in
  Alcotest.(check bool) "journal records written" true (s.Kvfs.Journalfs.journal_records >= 2);
  Alcotest.(check bool) "mini-C hot paths ran" true (s.Kvfs.Journalfs.hot_calls > 0);
  Alcotest.(check bool) "interp did work" true (s.Kvfs.Journalfs.interp_steps > 0)

let test_journalfs_kgcc_equivalence () =
  (* the same workload through GCC- and KGCC-compiled journalfs must
     produce identical filesystem contents *)
  let go transform =
    let kernel = mk_kernel () in
    let j =
      match transform with
      | None -> Kvfs.Journalfs.create kernel
      | Some tr ->
          let rt =
            Kgcc.Kgcc_runtime.create ~clock:(Ksim.Kernel.clock kernel)
              ~cost:Ksim.Cost_model.zero ()
          in
          Kvfs.Journalfs.create ~transform:tr
            ~attach:(Kgcc.Kgcc_runtime.attach rt) kernel
    in
    let vfs = Kvfs.Vfs.create ~root_fs:(Kvfs.Journalfs.ops j) kernel in
    for i = 0 to 9 do
      let p = Printf.sprintf "/f%d" i in
      let h = check_ok "create" (Kvfs.Vfs.open_file vfs p [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
      ignore (check_ok "write" (Kvfs.Vfs.write vfs h (Bytes.of_string (string_of_int (i * i)))));
      ignore (check_ok "close" (Kvfs.Vfs.close vfs h))
    done;
    ignore (check_ok "unlink" (Kvfs.Vfs.unlink vfs "/f3"));
    List.map (fun d -> d.Kvfs.Vtypes.d_name) (check_ok "readdir" (Kvfs.Vfs.readdir vfs "/"))
  in
  Alcotest.(check (list string)) "same directory contents"
    (go None)
    (go (Some Kgcc.Compile.transform))

let () =
  Alcotest.run "kvfs"
    [
      ( "memfs",
        [
          Alcotest.test_case "create/lookup" `Quick test_memfs_create_lookup;
          Alcotest.test_case "read/write/truncate" `Quick test_memfs_rw;
          Alcotest.test_case "unlink/rename" `Quick test_memfs_unlink_rename;
          Alcotest.test_case "readdir order" `Quick test_memfs_readdir_order;
        ] );
      ( "block-dev",
        [
          Alcotest.test_case "cache" `Quick test_block_dev_cache;
          Alcotest.test_case "second chance" `Quick test_block_dev_second_chance;
        ] );
      ( "dcache",
        [
          Alcotest.test_case "basic" `Quick test_dcache;
          Alcotest.test_case "sharded" `Quick test_dcache_sharded;
          Alcotest.test_case "lockless reads" `Quick test_dcache_sharded_lockless_reads;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "paths" `Quick test_vfs_paths;
          Alcotest.test_case "fd semantics" `Quick test_vfs_fd_semantics;
          Alcotest.test_case "open flags" `Quick test_vfs_open_flags;
          Alcotest.test_case "mounts" `Quick test_vfs_mounts;
          Alcotest.test_case "dcache integration" `Quick test_vfs_dcache_integration;
        ] );
      ( "wrapfs",
        [
          Alcotest.test_case "passthrough" `Quick test_wrapfs_passthrough;
          Alcotest.test_case "private freed" `Quick test_wrapfs_private_freed_on_unlink;
        ] );
      ( "journalfs",
        [
          Alcotest.test_case "ops" `Quick test_journalfs_ops;
          Alcotest.test_case "kgcc equivalence" `Quick test_journalfs_kgcc_equivalence;
        ] );
    ]
