(* Tests for kopt, the verified-compound optimizer: every rewrite
   family (coalesce, fuse, hoist, fd-resolution caching) must leave
   execution observably identical to the interpreter — same result
   slots, shared-buffer bytes, file contents and errno values — while
   only the cycle accounting improves.  Plus the compiled-program
   cache, the ring-batch plan, and the detached-optimizer identity. *)

module Op = Cosy.Cosy_op
module Compound = Cosy.Compound
module Exec = Cosy.Cosy_exec
module Plan = Kopt.Plan
module Checker = Kverify.Checker

let sysno name = Option.get (Op.sysno_of_name name)
let shared_size = 4096

let verify_cfg =
  { Core.Config.default with verify = Some Core.Verify.Log; optimize = false }

let opt_cfg = { verify_cfg with optimize = true }

(* seed a file both twin systems agree on *)
let put_file t path data =
  let sys = Core.sys t in
  let fd = Core.ok (Core.Syscall.sys_open sys ~path ~flags:Core.o_create) in
  ignore (Core.ok (Core.Syscall.sys_write sys ~fd ~data));
  Core.ok (Core.Syscall.sys_close sys ~fd)

let file_bytes t path =
  match Core.Syscall.sys_open_read_close (Core.sys t) ~path ~maxlen:16384 with
  | Ok b -> Bytes.to_string b
  | Error e -> Printf.sprintf "errno:%d" (Kvfs.Vtypes.errno_code e)

(* run one compound on a fresh system; capture slots (or the exception),
   the shared buffer, and the virtual cycles the submit cost *)
let run_one ?(setup = fun _ -> ()) cfg compound =
  let t = Core.boot_with cfg in
  setup t;
  let cx = Core.cosy ~shared_size t in
  let result = ref (Error "unset") in
  let (), tm =
    Ksim.Kernel.timed (Core.kernel t) (fun () ->
        result :=
          (try Ok (Exec.submit cx compound)
           with e -> Error (Printexc.to_string e)))
  in
  let shared =
    Cosy.Shared_buffer.read_string (Exec.shared cx) ~off:0 ~len:shared_size
  in
  (t, !result, shared, tm.Ksim.Kernel.elapsed)

(* the core property: verified interpretation and optimized execution
   of the same compound are observably identical *)
let check_twins ?setup what ops ~slot_count =
  let compound = Compound.encode ~slot_count ops in
  let tv, rv, sv, cyv = run_one ?setup verify_cfg compound in
  let topt, ro, so, cyo = run_one ?setup opt_cfg compound in
  Alcotest.(check (result (array int) string))
    (what ^ ": slots") rv ro;
  Alcotest.(check bool) (what ^ ": shared bytes") true (sv = so);
  Alcotest.(check string)
    (what ^ ": file /f end state")
    (file_bytes tv "/f") (file_bytes topt "/f");
  (tv, topt, cyv, cyo)

(* cycles of a second (steady-state) submission: on the optimized system
   the compile cost has amortized and the cache hit skips admission *)
let steady_cycles ?(setup = fun _ -> ()) cfg compound =
  let t = Core.boot_with cfg in
  setup t;
  let cx = Core.cosy ~shared_size t in
  ignore (Exec.submit cx compound);
  let (), tm =
    Ksim.Kernel.timed (Core.kernel t) (fun () -> ignore (Exec.submit cx compound))
  in
  tm.Ksim.Kernel.elapsed

let check_steady_faster ?setup what ops ~slot_count =
  let compound = Compound.encode ~slot_count ops in
  let cyv = steady_cycles ?setup verify_cfg compound in
  let cyo = steady_cycles ?setup opt_cfg compound in
  Alcotest.(check bool)
    (Printf.sprintf "%s: steady optimized cheaper (%d vs %d cycles)" what cyv
       cyo)
    true (cyo < cyv)

let compile ops ~slot_count =
  let compound = Compound.encode ~slot_count ops in
  match Checker.verify_compound ~shared_size compound with
  | Checker.Rejected why -> Alcotest.failf "compound rejected: %s" why
  | Checker.Verified { loops; _ } ->
      let ops, slot_count = Compound.decode compound in
      Plan.compile ~shared_size ~loops ops ~slot_count

(* --- the plan compiler (pure) ------------------------------------------- *)

let sc_open dst path flags =
  Op.Syscall { dst; sysno = sysno "open"; args = [ Op.Str path; Op.Const flags ] }

let sc_read dst fd off len =
  Op.Syscall
    { dst; sysno = sysno "read"; args = [ fd; Op.Shared off; Op.Const len ] }

let sc_write dst fd off len =
  Op.Syscall
    { dst; sysno = sysno "write"; args = [ fd; Op.Shared off; Op.Const len ] }

let sc_close dst fd = Op.Syscall { dst; sysno = sysno "close"; args = [ fd ] }

let counts plan = (plan.Plan.coalesced_pairs, plan.Plan.fused_pairs)

let test_plan_coalesce () =
  let plan =
    compile ~slot_count:4
      [
        sc_open 0 "/f" 0;
        sc_read 1 (Op.Slot 0) 0 512;
        sc_read 2 (Op.Slot 0) 512 512;
        sc_close 3 (Op.Slot 0);
        Op.Halt;
      ]
  in
  Alcotest.(check (pair int int)) "one coalesced pair" (1, 0) (counts plan);
  Alcotest.(check int) "1024 bytes merged" 1024 plan.Plan.coalesced_bytes;
  (match plan.Plan.instrs.(1) with
  | Plan.I_coalesce { kind = Plan.G_read; off = 0; len_a = 512; len_b = 512; _ }
    -> ()
  | _ -> Alcotest.fail "op 1 should be the merged bulk read");
  match plan.Plan.instrs.(2) with
  | Plan.I_skip -> ()
  | _ -> Alcotest.fail "op 2 should be skipped"

(* each guard that must refuse pairing, as (name, ops) *)
let refusals =
  [
    ( "gap between ranges",
      [ sc_open 0 "/f" 0; sc_read 1 (Op.Slot 0) 0 512;
        sc_read 2 (Op.Slot 0) 600 512; Op.Halt ] );
    ( "overlapping ranges",
      [ sc_open 0 "/f" 0; sc_read 1 (Op.Slot 0) 0 512;
        sc_read 2 (Op.Slot 0) 256 512; Op.Halt ] );
    ( "different fds",
      [ sc_open 0 "/f" 0; sc_open 1 "/g" 0; sc_read 2 (Op.Slot 0) 0 512;
        sc_read 3 (Op.Slot 1) 512 512; Op.Halt ] );
    ( "non-constant length",
      [ sc_open 0 "/f" 0; Op.Set { dst = 1; src = Op.Const 512 };
        sc_read 2 (Op.Slot 0) 0 512;
        Op.Syscall
          { dst = 3; sysno = sysno "read";
            args = [ Op.Slot 0; Op.Shared 512; Op.Slot 1 ] };
        Op.Halt ] );
    ( "second fd depends on first result",
      [ sc_open 0 "/f" 0; sc_read 1 (Op.Slot 0) 0 512;
        sc_read 2 (Op.Slot 1) 512 512; Op.Halt ] );
    ( "fuse length mismatch",
      [ sc_open 0 "/f" 0; sc_open 1 "/g" 3; sc_read 2 (Op.Slot 0) 0 512;
        sc_write 3 (Op.Slot 1) 0 256; Op.Halt ] );
    ( "fuse offset mismatch",
      [ sc_open 0 "/f" 0; sc_open 1 "/g" 3; sc_read 2 (Op.Slot 0) 0 512;
        sc_write 3 (Op.Slot 1) 512 512; Op.Halt ] );
  ]

let test_plan_refusals () =
  List.iter
    (fun (name, ops) ->
      let plan = compile ~slot_count:8 ops in
      Alcotest.(check (pair int int)) name (0, 0) (counts plan))
    refusals

let test_plan_jump_target_blocks_pairing () =
  (* a jz lands on the second read: pairing would change where the jump
     resumes, so the compiler must refuse *)
  let plan =
    compile ~slot_count:8
      [
        sc_open 0 "/f" 0;
        Op.Jz { cond = Op.Const 0; target = 3 };
        sc_read 1 (Op.Slot 0) 0 512;
        sc_read 2 (Op.Slot 0) 512 512;
        Op.Halt;
      ]
  in
  Alcotest.(check (pair int int)) "jump into pair refused" (0, 0) (counts plan)

let test_plan_fuse () =
  let plan =
    compile ~slot_count:6
      [
        sc_open 0 "/src" 0;
        sc_open 1 "/dst" 3;
        sc_read 2 (Op.Slot 0) 0 1024;
        sc_write 3 (Op.Slot 1) 0 1024;
        sc_close 4 (Op.Slot 0);
        sc_close 5 (Op.Slot 1);
        Op.Halt;
      ]
  in
  Alcotest.(check (pair int int)) "one fused pair" (0, 1) (counts plan);
  match plan.Plan.instrs.(2) with
  | Plan.I_fuse { off = 0; len = 1024; _ } -> ()
  | _ -> Alcotest.fail "op 2 should be the splice"

let getpid_loop iters =
  [
    Op.Set { dst = 0; src = Op.Const 0 };
    Op.Arith { dst = 1; op = Op.Alt; a = Op.Slot 0; b = Op.Const iters };
    Op.Jz { cond = Op.Slot 1; target = 7 };
    Op.Syscall { dst = 2; sysno = sysno "getpid"; args = [] };
    Op.Arith { dst = 3; op = Op.Aadd; a = Op.Slot 0; b = Op.Const 1 };
    Op.Set { dst = 0; src = Op.Slot 3 };
    Op.Jmp 1;
    Op.Halt;
  ]

let test_plan_hoist () =
  let plan = compile ~slot_count:4 (getpid_loop 10) in
  Alcotest.(check int) "one counted loop" 1 plan.Plan.n_loops;
  Alcotest.(check bool) "body ops hoisted" true (plan.Plan.hoisted_ops >= 5);
  Alcotest.(check bool) "loop body marked" true plan.Plan.hoisted.(3);
  Alcotest.(check bool) "halt not marked" false plan.Plan.hoisted.(7)

(* --- execution equivalence ----------------------------------------------- *)

let pattern n = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff))

let test_exec_coalesce_equivalent () =
  let setup t = put_file t "/f" (pattern 2048) in
  let ops =
    [
      sc_open 0 "/f" 0;
      sc_read 1 (Op.Slot 0) 0 512;
      sc_read 2 (Op.Slot 0) 512 512;
      sc_close 3 (Op.Slot 0);
      Op.Halt;
    ]
  in
  ignore (check_twins ~setup "coalesced reads" ~slot_count:4 ops);
  check_steady_faster ~setup "coalesced reads" ~slot_count:4 ops

let test_exec_coalesce_short_read () =
  (* 700-byte file: the bulk read returns short and must split exactly
     like the interpreter's two sequential reads (512 then 188) *)
  let setup t = put_file t "/f" (pattern 700) in
  ignore
    (check_twins ~setup "short bulk read" ~slot_count:4
       [
         sc_open 0 "/f" 0;
         sc_read 1 (Op.Slot 0) 0 512;
         sc_read 2 (Op.Slot 0) 512 512;
         sc_close 3 (Op.Slot 0);
         Op.Halt;
       ])

let test_exec_coalesce_at_eof () =
  (* 300-byte file: the first read drains it, the second returns 0 *)
  let setup t = put_file t "/f" (pattern 300) in
  ignore
    (check_twins ~setup "bulk read at EOF" ~slot_count:4
       [
         sc_open 0 "/f" 0;
         sc_read 1 (Op.Slot 0) 0 512;
         sc_read 2 (Op.Slot 0) 512 512;
         sc_close 3 (Op.Slot 0);
         Op.Halt;
       ])

let splice_ops =
  [
    sc_open 0 "/f" 0;
    sc_open 1 "/dst" 3;
    sc_read 2 (Op.Slot 0) 0 1024;
    sc_write 3 (Op.Slot 1) 0 1024;
    sc_close 4 (Op.Slot 0);
    sc_close 5 (Op.Slot 1);
    Op.Halt;
  ]

let test_exec_fuse_equivalent () =
  let setup t = put_file t "/f" (pattern 1024) in
  let tv, topt, _, _ =
    check_twins ~setup "fused splice" ~slot_count:6 splice_ops
  in
  Alcotest.(check string)
    "spliced /dst bytes" (file_bytes tv "/dst") (file_bytes topt "/dst");
  check_steady_faster ~setup "fused splice" ~slot_count:6 splice_ops

let test_exec_fuse_stale_suffix () =
  (* the read returns 300 of the requested 1024 bytes; the interpreter's
     write still sources the full 1024-byte shared range (fresh prefix +
     stale zeros), and the fused dispatch must reproduce that *)
  let setup t = put_file t "/f" (pattern 300) in
  let tv, topt, _, _ =
    check_twins ~setup "short-read splice" ~slot_count:6 splice_ops
  in
  let dv = file_bytes tv "/dst" in
  Alcotest.(check string) "stale-suffix /dst bytes" dv (file_bytes topt "/dst");
  Alcotest.(check int) "write kept its full length" 1024 (String.length dv)

let test_exec_fd_closed_mid_compound () =
  (* close between two reads: the second must fail EBADF on both paths,
     and the optimizer must re-resolve (not reuse) the dead fd *)
  let setup t = put_file t "/f" (pattern 256) in
  let _, topt, _, _ =
    check_twins ~setup "read after close" ~slot_count:4
      [
        sc_open 0 "/f" 0;
        sc_read 1 (Op.Slot 0) 0 64;
        sc_close 2 (Op.Slot 0);
        sc_read 3 (Op.Slot 0) 128 64;
        Op.Halt;
      ]
  in
  let ko = Option.get (Core.kopt topt) in
  Alcotest.(check int) "close evicted: fd resolved twice" 2
    (Core.Opt.fd_resolved ko)

let test_exec_loop_hoisted_and_faster () =
  let _, _, cyv, cyo =
    check_twins "counted getpid loop" ~slot_count:4 (getpid_loop 200)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hoisted loop >=1.3x (%d vs %d cycles)" cyv cyo)
    true
    (float_of_int cyv /. float_of_int (max 1 cyo) >= 1.3)

let test_fd_cache_counters () =
  (* non-contiguous reads (no coalescing): resolve once, reuse twice *)
  let setup t = put_file t "/f" (pattern 1024) in
  let compound =
    Compound.encode ~slot_count:4
      [
        sc_open 0 "/f" 0;
        sc_read 1 (Op.Slot 0) 0 100;
        sc_read 2 (Op.Slot 0) 500 100;
        sc_close 3 (Op.Slot 0);
        Op.Halt;
      ]
  in
  let t, _, _, _ = run_one ~setup opt_cfg compound in
  let ko = Option.get (Core.kopt t) in
  Alcotest.(check int) "fd resolved once" 1 (Core.Opt.fd_resolved ko);
  Alcotest.(check int) "fd reused twice" 2 (Core.Opt.fd_reused ko)

(* --- the compiled-program cache ------------------------------------------ *)

let test_cache_counters_and_amortization () =
  Kstats.default_enabled := true;
  let t = Core.boot_with opt_cfg in
  Kstats.default_enabled := false;
  let cx = Core.cosy ~shared_size t in
  let compound = Compound.encode ~slot_count:4 (getpid_loop 50) in
  let submit () =
    let (), tm =
      Ksim.Kernel.timed (Core.kernel t) (fun () ->
          ignore (Exec.submit cx compound))
    in
    tm.Ksim.Kernel.elapsed
  in
  let first = submit () in
  let second = submit () in
  let third = submit () in
  let ko = Option.get (Core.kopt t) in
  Alcotest.(check int) "hits" 2 (Core.Opt.hits ko);
  Alcotest.(check int) "misses" 1 (Core.Opt.misses ko);
  Alcotest.(check int) "compiles" 1 (Core.Opt.compiles ko);
  Alcotest.(check int) "cache holds one program" 1 (Core.Opt.cache_size ko);
  Alcotest.(check bool) "hits skip admission+compile" true
    (second < first && third = second);
  let find name =
    match Kstats.find (Core.stats t) name with
    | Some (Kstats.Counter_v v) -> v
    | _ -> -1
  in
  Alcotest.(check int) "kopt.cache.hits" 2 (find "kopt.cache.hits");
  Alcotest.(check int) "kopt.cache.misses" 1 (find "kopt.cache.misses");
  Alcotest.(check int) "kopt.cache.compiles" 1 (find "kopt.cache.compiles")

let test_cache_capacity_evicts () =
  let t = Core.boot_with opt_cfg in
  let ko = Option.get (Core.kopt t) in
  let kv = Option.get (Core.kverify t) in
  ignore kv;
  let distinct n = Compound.encode ~slot_count:4 (getpid_loop (10 + n)) in
  (* default capacity is 64: 70 distinct programs must evict FIFO *)
  for n = 1 to 70 do
    ignore (Kopt.try_plan ko ~shared_size (distinct n))
  done;
  Alcotest.(check int) "cache stays bounded" 64 (Core.Opt.cache_size ko);
  Alcotest.(check int) "every program compiled" 70 (Core.Opt.compiles ko)

let test_rejected_compound_not_planned () =
  let t = Core.boot_with opt_cfg in
  let ko = Option.get (Core.kopt t) in
  (* Call_user is exactly what the checker refuses to admit *)
  let c =
    Compound.encode ~slot_count:1
      [ Op.Call_user { dst = 0; fname = "f"; args = [] }; Op.Halt ]
  in
  Alcotest.(check bool) "no plan for rejected compound" true
    (Kopt.try_plan ko ~shared_size c = None);
  Alcotest.(check int) "nothing compiled" 0 (Core.Opt.compiles ko)

(* --- the detached-optimizer identity ------------------------------------- *)

let test_detached_optimizer_identity () =
  let compound = Compound.encode ~slot_count:4 (getpid_loop 100) in
  let _, r1, s1, cy1 = run_one Core.Config.default compound in
  let t = Core.boot_with { Core.Config.default with optimize = true } in
  let cx = Core.cosy ~shared_size t in
  Exec.set_optimizer cx None;
  let r2 = Ok (Exec.submit cx compound) in
  ignore r2;
  let (), tm =
    Ksim.Kernel.timed (Core.kernel t) (fun () -> ignore (Exec.submit cx compound))
  in
  ignore tm;
  (* measure a fresh detached run on its own clock for exact identity *)
  let t3 = Core.boot_with { Core.Config.default with optimize = true } in
  let cx3 = Core.cosy ~shared_size t3 in
  Exec.set_optimizer cx3 None;
  let slots3 = ref [||] in
  let (), tm3 =
    Ksim.Kernel.timed (Core.kernel t3) (fun () ->
        slots3 := Exec.submit cx3 compound)
  in
  Alcotest.(check (result (array int) string)) "slots" r1 (Ok !slots3);
  Alcotest.(check bool) "shared" true
    (s1
    = Cosy.Shared_buffer.read_string (Exec.shared cx3) ~off:0 ~len:shared_size);
  Alcotest.(check int) "cycle-identical to a system without kopt" cy1
    tm3.Ksim.Kernel.elapsed

(* --- the ring half -------------------------------------------------------- *)

let test_ring_plan_fuses_recv_send () =
  let t = Core.boot_with opt_cfg in
  let ko = Option.get (Core.kopt t) in
  let reqs =
    [
      Ksyscall.Syscall.Recv { sock = 5; len = 100 };
      Ksyscall.Syscall.Send { sock = 5; data = Bytes.of_string "x" };
      Ksyscall.Syscall.Recv { sock = 6; len = 100 };
      Ksyscall.Syscall.Send { sock = 7; data = Bytes.of_string "y" };
    ]
  in
  match Kopt.ring_plan ko reqs with
  | None -> Alcotest.fail "well-formed batch should plan"
  | Some plan ->
      Alcotest.(check (array bool))
        "only the same-socket adjacent pair fuses"
        [| true; false; false; false |]
        plan.Kring.fuse_next;
      Alcotest.(check bool) "completion copy-out coalesced" true
        plan.Kring.coalesce_cq

let test_ring_plan_rejects_malformed () =
  let t = Core.boot_with opt_cfg in
  let ko = Option.get (Core.kopt t) in
  Alcotest.(check bool) "negative fd batch refused" true
    (Kopt.ring_plan ko [ Ksyscall.Syscall.Read { fd = -1; len = 8 } ] = None)

(* recover the NIC-side socket id for injection, as the services do *)
let sock_id sys fd =
  match
    Ksim.Kproc.lookup_fd (Ksim.Kernel.current (Ksyscall.Systable.kernel sys)) fd
  with
  | Some h when h >= Knet.handle_base -> h - Knet.handle_base
  | _ -> Alcotest.fail "fd is not a socket"

let echo_batch cfg =
  let t = Core.boot_with cfg in
  let sys = Core.sys t in
  let net = Core.net t in
  let s = Core.Syscall.sys_socket sys in
  ignore (Core.Syscall.sys_bind sys ~sock:s ~port:80);
  ignore (Core.Syscall.sys_listen sys ~sock:s ~backlog:4);
  ignore (Knet.inject_connect net ~port:80);
  let conn = Core.ok (Core.Syscall.sys_accept sys ~sock:s) in
  ignore (Knet.inject_bytes net ~sock:(sock_id sys conn) "ping-payload");
  let ring = Core.ring t in
  let comps =
    Kring.run_batch ring
      [
        Ksyscall.Syscall.Recv { sock = conn; len = 64 };
        Ksyscall.Syscall.Send { sock = conn; data = Bytes.of_string "pong" };
      ]
  in
  (t, ring, List.map (fun (c : Kring.completion) -> c.Kring.reply) comps)

let test_ring_fused_echo_equivalent () =
  let _, _, base = echo_batch verify_cfg in
  let _, ring, opt = echo_batch opt_cfg in
  Alcotest.(check bool) "replies identical" true (base = opt);
  Alcotest.(check int) "recv->send pair fused" 1 (Kring.fused_pairs ring);
  Alcotest.(check bool) "completion bytes coalesced" true
    (Kring.cq_bytes_saved ring > 0)

(* --- the property: random verified compounds are equivalent --------------- *)

(* straight-line file programs over one descriptor slot: reads, preads,
   writes, getpids, a mid-stream close or re-open.  Offsets and lengths
   land on a 64-byte grid so adjacent ops are often contiguous and the
   coalesce/fuse rewrites actually fire. *)
type gop =
  | Gread of int * int
  | Gpread of int * int * int
  | Gwrite of int * int
  | Ggetpid
  | Gclose
  | Greopen

let gen_gop =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun o l -> Gread (64 * o, 64 * l)) (int_range 0 30) (int_range 0 4));
        ( 3,
          map3
            (fun o l f -> Gpread (64 * o, 64 * l, 64 * f))
            (int_range 0 30) (int_range 0 4) (int_range 0 8) );
        (3, map2 (fun o l -> Gwrite (64 * o, 64 * l)) (int_range 0 30) (int_range 0 4));
        (2, return Ggetpid);
        (1, return Gclose);
        (1, return Greopen);
      ])

let ops_of_gops gops =
  let fd = Op.Slot 0 in
  let body =
    List.mapi
      (fun i g ->
        let dst = 1 + (i mod 6) in
        match g with
        | Gread (off, len) -> sc_read dst fd off len
        | Gpread (off, len, foff) ->
            Op.Syscall
              {
                dst;
                sysno = sysno "pread";
                args = [ fd; Op.Shared off; Op.Const len; Op.Const foff ];
              }
        | Gwrite (off, len) -> sc_write dst fd off len
        | Ggetpid -> Op.Syscall { dst; sysno = sysno "getpid"; args = [] }
        | Gclose -> sc_close dst fd
        | Greopen -> sc_open 0 "/f" 1)
      gops
  in
  (sc_open 0 "/f" 1 :: body) @ [ Op.Halt ]

let qcheck_optimized_equivalent =
  QCheck.Test.make ~name:"optimized execution == verified interpretation"
    ~count:60
    (QCheck.make
       ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 20) gen_gop))
    (fun gops ->
      let ops = ops_of_gops gops in
      let compound = Compound.encode ~slot_count:8 ops in
      let setup t = put_file t "/f" (pattern 1024) in
      let tv, rv, sv, _ = run_one ~setup verify_cfg compound in
      let topt, ro, so, _ = run_one ~setup opt_cfg compound in
      rv = ro && sv = so && file_bytes tv "/f" = file_bytes topt "/f")

let () =
  Alcotest.run "kopt"
    [
      ( "plan",
        [
          Alcotest.test_case "coalesce adjacent reads" `Quick test_plan_coalesce;
          Alcotest.test_case "refusal guards" `Quick test_plan_refusals;
          Alcotest.test_case "jump target blocks pairing" `Quick
            test_plan_jump_target_blocks_pairing;
          Alcotest.test_case "fuse read->write" `Quick test_plan_fuse;
          Alcotest.test_case "hoist counted loops" `Quick test_plan_hoist;
        ] );
      ( "exec-equivalence",
        [
          Alcotest.test_case "coalesced reads" `Quick
            test_exec_coalesce_equivalent;
          Alcotest.test_case "short bulk read splits" `Quick
            test_exec_coalesce_short_read;
          Alcotest.test_case "bulk read at EOF" `Quick test_exec_coalesce_at_eof;
          Alcotest.test_case "fused splice" `Quick test_exec_fuse_equivalent;
          Alcotest.test_case "stale suffix preserved" `Quick
            test_exec_fuse_stale_suffix;
          Alcotest.test_case "fd closed mid-compound" `Quick
            test_exec_fd_closed_mid_compound;
          Alcotest.test_case "hoisted loop >=1.3x" `Quick
            test_exec_loop_hoisted_and_faster;
          Alcotest.test_case "fd resolution cached" `Quick
            test_fd_cache_counters;
          QCheck_alcotest.to_alcotest qcheck_optimized_equivalent;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/compile counters" `Quick
            test_cache_counters_and_amortization;
          Alcotest.test_case "capacity bounds the cache" `Quick
            test_cache_capacity_evicts;
          Alcotest.test_case "rejected compounds never plan" `Quick
            test_rejected_compound_not_planned;
        ] );
      ( "ring",
        [
          Alcotest.test_case "plan fuses recv->send" `Quick
            test_ring_plan_fuses_recv_send;
          Alcotest.test_case "malformed batch refused" `Quick
            test_ring_plan_rejects_malformed;
          Alcotest.test_case "fused echo equivalent" `Quick
            test_ring_fused_echo_equivalent;
        ] );
      ( "identity",
        [
          Alcotest.test_case "detached optimizer is free" `Quick
            test_detached_optimizer_identity;
        ] );
    ]
