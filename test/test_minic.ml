(* Tests for the mini-C frontend and interpreter. *)

let mk_interp ?(pages = 64) () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space =
    Ksim.Address_space.create ~name:"i" ~mem ~clock ~cost:Ksim.Cost_model.zero ()
  in
  Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.zero ~base_vpn:16
    ~pages

let run_src ?(fn = "main") ?(args = []) src =
  let i = mk_interp () in
  ignore (Minic.Interp.parse_and_load i src);
  Minic.Interp.run i ~args fn

let check_run msg expected ?fn ?args src =
  Alcotest.(check int) msg expected (run_src ?fn ?args src)

(* --- lexer -------------------------------------------------------------- *)

let test_lexer_basic () =
  let toks = Minic.Lexer.tokens "int x = 42; // comment\nx += 'a';" in
  let names = List.map (fun (t, _) -> Minic.Token.to_string t) toks in
  Alcotest.(check (list string)) "tokens"
    [ "int"; "x"; "="; "42"; ";"; "x"; "+="; "'a'"; ";"; "<eof>" ]
    names

let test_lexer_string_escapes () =
  match Minic.Lexer.tokens {|"a\nb\0"|} with
  | [ (Minic.Token.STRING s, _); (Minic.Token.EOF, _) ] ->
      Alcotest.(check string) "escapes" "a\nb\000" s
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_line_numbers () =
  let toks = Minic.Lexer.tokens "int\nx\n=\n1;" in
  let lines = List.map snd toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 4; 4; 4 ] lines

let test_lexer_comments () =
  let toks = Minic.Lexer.tokens "/* multi\nline */ 7" in
  match toks with
  | [ (Minic.Token.INT 7, line); _ ] -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_errors () =
  (try
     ignore (Minic.Lexer.tokens "int x = @;");
     Alcotest.fail "expected lex error"
   with Minic.Lexer.Lex_error _ -> ());
  try
    ignore (Minic.Lexer.tokens "\"unterminated");
    Alcotest.fail "expected lex error"
  with Minic.Lexer.Lex_error _ -> ()

(* --- parser ------------------------------------------------------------- *)

let test_parser_precedence () =
  check_run "mul binds tighter" 14 "int main(void) { return 2 + 3 * 4; }";
  check_run "parens" 20 "int main(void) { return (2 + 3) * 4; }";
  check_run "comparison" 1 "int main(void) { return 1 + 1 == 2; }";
  check_run "logical" 1 "int main(void) { return 1 && 2 || 0; }";
  check_run "unary minus" (-6) "int main(void) { return -2 * 3; }";
  check_run "shift" 16 "int main(void) { return 1 << 4; }";
  check_run "bitops" 6 "int main(void) { return (12 & 7) | 2; }"

let test_parser_errors () =
  (try
     ignore (Minic.Parser.parse_program "int main(void) { return 1 }");
     Alcotest.fail "expected parse error"
   with Minic.Parser.Parse_error (_, line) ->
     Alcotest.(check int) "error line" 1 line);
  try
    ignore (Minic.Parser.parse_program "int f(int) { return 1; }");
    Alcotest.fail "expected parse error"
  with Minic.Parser.Parse_error _ -> ()

let test_parser_for_desugar () =
  check_run "for loop" 45
    "int main(void) { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; }"

let test_parser_cosy_markers () =
  let p =
    Minic.Parser.parse_program
      "int f(void) { COSY_START; int x = 1; COSY_END; return x; }"
  in
  match p.Minic.Ast.funcs with
  | [ f ] ->
      let kinds = List.map (fun s -> s.Minic.Ast.s) f.Minic.Ast.body in
      Alcotest.(check bool) "starts with marker" true
        (match kinds with Minic.Ast.Scosy_start :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected one function"

(* --- typechecker -------------------------------------------------------- *)

let tc src = Minic.Typecheck.check (Minic.Parser.parse_program src)

let test_typecheck_errors () =
  let expect_error src =
    try
      ignore (tc src);
      Alcotest.fail ("expected type error: " ^ src)
    with Minic.Typecheck.Type_error _ -> ()
  in
  expect_error "int main(void) { return y; }";
  expect_error "int main(void) { int x; int x; return 0; }";
  expect_error "int main(void) { return *4; }" |> ignore;
  expect_error "int main(void) { 4 = 5; return 0; }";
  expect_error "int main(void) { int x; return x[0]; }"

let test_addressable_analysis () =
  let info =
    tc
      {|
int f(void) {
  int plain = 1;
  int taken = 2;
  int arr[4];
  int *p = &taken;
  return plain + *p + arr[0];
}
|}
  in
  Alcotest.(check bool) "taken is addressable" true
    (Minic.Typecheck.is_addressable info ~fname:"f" ~var:"taken");
  Alcotest.(check bool) "arr is addressable" true
    (Minic.Typecheck.is_addressable info ~fname:"f" ~var:"arr");
  Alcotest.(check bool) "plain is not" false
    (Minic.Typecheck.is_addressable info ~fname:"f" ~var:"plain")

(* --- interpreter -------------------------------------------------------- *)

let test_interp_control_flow () =
  check_run "if/else" 1 "int main(void) { if (2 > 1) return 1; else return 2; }";
  check_run "while" 10
    "int main(void) { int i = 0; while (i < 10) i = i + 1; return i; }";
  check_run "break" 5
    "int main(void) { int i = 0; while (1) { if (i == 5) break; i++; } return i; }";
  check_run "continue" 25
    {|int main(void) {
       int s = 0; int i;
       for (i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
       return s;
     }|};
  check_run "ternary" 7 "int main(void) { return 1 ? 7 : 9; }";
  check_run "nested calls" 21
    "int add(int a, int b) { return a + b; } int main(void) { return add(add(1,2), add(8,10)); }"

let test_for_continue_regression () =
  (* continue in a for loop must still run the step (a naive while
     desugaring loops forever here) *)
  check_run "continue runs the step" 20
    {|int main(void) {
       int n = 0; int i;
       for (i = 0; i < 10; i++) {
         if (i % 2 == 1) continue;
         n += 4;
       }
       return n;
     }|};
  check_run "break skips the step" 3
    {|int main(void) {
       int i;
       for (i = 0; i < 10; i++) {
         if (i == 3) break;
       }
       return i;
     }|};
  check_run "nested for with continue" 30
    {|int main(void) {
       int s = 0; int i; int j;
       for (i = 0; i < 3; i++)
         for (j = 0; j < 10; j++) {
           if (j >= 5) continue;
           s += 2;
         }
       return s;
     }|}

let test_interp_recursion () =
  check_run "fib" 55
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
    ~fn:"fib" ~args:[ 10 ];
  check_run "mutual" 1
    {|int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
      int main(void) { return is_even(10); }|}

let test_interp_pointers () =
  check_run "deref assign" 43
    "int main(void) { int x = 42; int *p = &x; *p = *p + 1; return x; }";
  check_run "pointer arith" 30
    {|int main(void) {
       int a[3];
       a[0] = 10; a[1] = 20; a[2] = 30;
       int *p = a;
       p = p + 2;
       return *p;
     }|};
  check_run "pointer diff" 2
    {|int main(void) {
       int a[5];
       int *p = a;
       int *q = p + 2;
       return q - p;
     }|};
  check_run "char pointer walk" 3
    {|int main(void) {
       char *s = malloc(8);
       strcpy(s, "abc");
       int n = 0;
       while (s[n] != 0) n++;
       free(s);
       return n;
     }|}

let test_interp_globals () =
  check_run "global state" 3
    {|int counter;
      int bump(void) { counter = counter + 1; return counter; }
      int main(void) { bump(); bump(); return bump(); }|}

let test_interp_arrays_memfuncs () =
  check_run "memset/memcpy" 0
    {|int main(void) {
       char a[16];
       char b[16];
       memset(a, 7, 16);
       memcpy(b, a, 16);
       int i;
       for (i = 0; i < 16; i++) if (b[i] != 7) return 1;
       return 0;
     }|};
  check_run "strcmp" 0
    {|int main(void) { return strcmp("same", "same"); }|}

let test_interp_output () =
  let i = mk_interp () in
  ignore
    (Minic.Interp.parse_and_load i
       {|int main(void) { print_str("n="); print_int(42); putchar(10); return 0; }|});
  ignore (Minic.Interp.run i "main");
  Alcotest.(check string) "output" "n=42\n" (Minic.Interp.output i)

let test_interp_runtime_errors () =
  (try
     ignore (run_src "int main(void) { return 1 / 0; }");
     Alcotest.fail "expected div by zero"
   with Minic.Interp.Runtime_error (m, _) ->
     Alcotest.(check bool) "message" true
       (m = "division by zero"));
  (try
     ignore (run_src "int main(void) { return nosuch(); }");
     Alcotest.fail "expected unknown function"
   with Minic.Interp.Runtime_error _ -> ());
  try
    ignore (run_src "int main(void) { free(1234); return 0; }");
    Alcotest.fail "expected bad free"
  with Minic.Interp.Runtime_error _ -> ()

let test_interp_step_limit () =
  let i = mk_interp () in
  ignore (Minic.Interp.parse_and_load i "int main(void) { while (1) {} return 0; }");
  Minic.Interp.set_max_steps i 10_000;
  try
    ignore (Minic.Interp.run i "main");
    Alcotest.fail "expected step limit"
  with Minic.Interp.Step_limit -> ()

let test_interp_wild_pointer_faults () =
  let i = mk_interp () in
  ignore
    (Minic.Interp.parse_and_load i
       "int main(void) { int *p = (int*)99999999; return *p; }");
  try
    ignore (Minic.Interp.run i "main");
    Alcotest.fail "expected hardware fault"
  with Ksim.Fault.Fault _ -> ()

let test_interp_externs () =
  let i = mk_interp () in
  Minic.Interp.register_extern i "host_mul" (fun _ args ->
      match args with [ a; b ] -> a * b | _ -> -1);
  ignore (Minic.Interp.parse_and_load i "int main(void) { return host_mul(6, 7); }");
  Alcotest.(check int) "extern" 42 (Minic.Interp.run i "main")

let test_interp_obj_events () =
  let i = mk_interp () in
  let allocs = ref [] in
  let frees = ref 0 in
  Minic.Interp.set_on_obj i (fun ev ->
      match ev with
      | Minic.Interp.Obj_alloc { name; kind; size; _ } ->
          allocs := (name, kind, size) :: !allocs
      | Minic.Interp.Obj_free _ -> incr frees);
  ignore
    (Minic.Interp.parse_and_load i
       {|int g;
         int main(void) {
           int arr[4];
           char *h = malloc(10);
           free(h);
           return arr[0] + g;
         }|});
  ignore (Minic.Interp.run i "main");
  let kinds = List.map (fun (_, k, _) -> k) !allocs in
  Alcotest.(check bool) "global registered" true
    (List.mem Minic.Interp.Global kinds);
  Alcotest.(check bool) "stack registered" true
    (List.mem Minic.Interp.Stack kinds);
  Alcotest.(check bool) "heap registered" true (List.mem Minic.Interp.Heap kinds);
  (* heap free + stack array free at scope exit *)
  Alcotest.(check bool) "frees happened" true (!frees >= 2)

let test_interp_backedge_hook () =
  let i = mk_interp () in
  let edges = ref 0 in
  Minic.Interp.set_on_backedge i (fun () -> incr edges);
  ignore
    (Minic.Interp.parse_and_load i
       "int main(void) { int i; for (i = 0; i < 7; i++) {} return 0; }");
  ignore (Minic.Interp.run i "main");
  Alcotest.(check int) "backedges" 7 !edges

let test_interp_charges_cycles () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space =
    Ksim.Address_space.create ~name:"i" ~mem ~clock ~cost:Ksim.Cost_model.default ()
  in
  let i =
    Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.default ~base_vpn:16
      ~pages:16
  in
  ignore
    (Minic.Interp.parse_and_load i
       "int main(void) { int s = 0; int j; for (j = 0; j < 100; j++) s += j; return s; }");
  let t0 = Ksim.Sim_clock.now clock in
  ignore (Minic.Interp.run i "main");
  Alcotest.(check bool) "work charged" true (Ksim.Sim_clock.now clock > t0 + 1000)

let test_sizeof_and_casts () =
  check_run "sizeof int" 8 "int main(void) { return sizeof(int); }";
  check_run "sizeof char" 1 "int main(void) { return sizeof(char); }";
  check_run "sizeof ptr" 8 "int main(void) { return sizeof(int*); }";
  check_run "char cast masks" 1 "int main(void) { return (char)257; }"

(* --- pretty printer round trip ------------------------------------------ *)

let strip_locs_program (p : Minic.Ast.program) = Minic.Pretty.program_to_string p

let test_pretty_roundtrip () =
  let src =
    {|int g = 5;
int helper(int a, char *s) {
  int total = a;
  int i;
  for (i = 0; i < 3; i++) {
    if (s[i] != 0) total += s[i]; else break;
  }
  while (total > 100) total -= 7;
  return total;
}
int main(void) {
  char buf[16];
  strcpy(buf, "hey");
  return helper(g, buf);
}|}
  in
  let p1 = Minic.Parser.parse_program src in
  let printed = strip_locs_program p1 in
  let p2 = Minic.Parser.parse_program printed in
  Alcotest.(check string) "pretty fixpoint" printed (strip_locs_program p2);
  (* and both versions compute the same thing *)
  let i1 = mk_interp () in
  ignore (Minic.Interp.load_program i1 p1);
  let i2 = mk_interp () in
  ignore (Minic.Interp.load_program i2 p2);
  Alcotest.(check int) "same result" (Minic.Interp.run i1 "main")
    (Minic.Interp.run i2 "main")

(* --- qcheck: random arithmetic matches OCaml ----------------------------- *)

let qcheck_arith =
  (* generate random arithmetic over three int variables and compare the
     interpreter against native evaluation *)
  let gen =
    let open QCheck.Gen in
    let leaf () =
      oneof
        [
          map (fun n -> (string_of_int n, fun _ -> n)) (int_range 0 50);
          oneofl
            [
              ("a", fun (a, _, _) -> a);
              ("b", fun (_, b, _) -> b);
              ("c", fun (_, _, c) -> c);
            ];
        ]
    in
    let rec expr depth =
      if depth = 0 then leaf ()
      else
        frequency
          [ (1, leaf ());
            ( 3,
              let* op, f =
                oneofl
                  [ ("+", ( + )); ("-", ( - )); ("*", ( fun x y -> x * y)) ]
              in
              let* l = expr (depth - 1) in
              let* r = expr (depth - 1) in
              let ls, lf = l and rs, rf = r in
              return
                ( Printf.sprintf "(%s %s %s)" ls op rs,
                  fun env -> f (lf env) (rf env) ) ) ]
    in
    let* e = expr 4 in
    let* a = int_range (-100) 100 in
    let* b = int_range (-100) 100 in
    let* c = int_range (-100) 100 in
    return (e, (a, b, c))
  in
  QCheck.Test.make ~name:"interp arithmetic matches OCaml" ~count:60
    (QCheck.make gen) (fun ((src, eval), (a, b, c)) ->
      let prog =
        Printf.sprintf "int main(int a, int b, int c) { return %s; }" src
      in
      run_src ~args:[ a; b; c ] prog = eval (a, b, c))

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "lines" `Quick test_lexer_line_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "for desugar" `Quick test_parser_for_desugar;
          Alcotest.test_case "cosy markers" `Quick test_parser_cosy_markers;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "errors" `Quick test_typecheck_errors;
          Alcotest.test_case "addressable" `Quick test_addressable_analysis;
        ] );
      ( "interp",
        [
          Alcotest.test_case "control flow" `Quick test_interp_control_flow;
          Alcotest.test_case "for/continue regression" `Quick test_for_continue_regression;
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "pointers" `Quick test_interp_pointers;
          Alcotest.test_case "globals" `Quick test_interp_globals;
          Alcotest.test_case "mem funcs" `Quick test_interp_arrays_memfuncs;
          Alcotest.test_case "output" `Quick test_interp_output;
          Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
          Alcotest.test_case "step limit" `Quick test_interp_step_limit;
          Alcotest.test_case "wild pointer faults" `Quick test_interp_wild_pointer_faults;
          Alcotest.test_case "externs" `Quick test_interp_externs;
          Alcotest.test_case "obj events" `Quick test_interp_obj_events;
          Alcotest.test_case "backedge hook" `Quick test_interp_backedge_hook;
          Alcotest.test_case "cycle charging" `Quick test_interp_charges_cycles;
          Alcotest.test_case "sizeof/casts" `Quick test_sizeof_and_casts;
          QCheck_alcotest.to_alcotest qcheck_arith;
        ] );
      ( "pretty",
        [ Alcotest.test_case "roundtrip" `Quick test_pretty_roundtrip ] );
    ]
