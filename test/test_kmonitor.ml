(* Tests for the event-monitoring framework: the lock-free ring buffer
   (including a cross-domain property test), the dispatcher, the
   character device, libkernevents, the invariant monitors, and the disk
   logger. *)

let ev ?(obj = 1) ?(value = 0) ?(kind = Ksim.Instrument.Lock) ?(file = "f")
    ?(line = 0) ?(pid = 0) () =
  { Ksim.Instrument.obj; value; kind; file; line; pid }

(* --- ring buffer ------------------------------------------------------- *)

let test_ring_fifo () =
  let r = Kmonitor.Ring.create 8 in
  Alcotest.(check bool) "empty" true (Kmonitor.Ring.is_empty r);
  for i = 1 to 5 do
    Alcotest.(check bool) "push" true (Kmonitor.Ring.push r i)
  done;
  Alcotest.(check int) "length" 5 (Kmonitor.Ring.length r);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ]
    (Kmonitor.Ring.pop_batch r ~max:3);
  Alcotest.(check (list int)) "rest" [ 4; 5 ] (Kmonitor.Ring.pop_batch r ~max:10);
  Alcotest.(check (option int)) "drained" None (Kmonitor.Ring.pop r)

let test_ring_overflow_drops () =
  let r = Kmonitor.Ring.create 4 in
  for i = 1 to 6 do
    ignore (Kmonitor.Ring.push r i)
  done;
  Alcotest.(check int) "dropped" 2 (Kmonitor.Ring.dropped r);
  Alcotest.(check (list int)) "kept oldest" [ 1; 2; 3; 4 ]
    (Kmonitor.Ring.pop_batch r ~max:10)

let test_ring_wraparound () =
  let r = Kmonitor.Ring.create 4 in
  for round = 0 to 9 do
    Alcotest.(check bool) "push" true (Kmonitor.Ring.push r (round * 2));
    Alcotest.(check bool) "push" true (Kmonitor.Ring.push r ((round * 2) + 1));
    Alcotest.(check (list int)) "wrap round"
      [ round * 2; (round * 2) + 1 ]
      (Kmonitor.Ring.pop_batch r ~max:2)
  done

let test_ring_cross_domain () =
  (* genuine SPSC use: producer on another domain, consumer here; every
     pushed value must come out exactly once, in order *)
  let r = Kmonitor.Ring.create 64 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        let pushed = ref 0 in
        let i = ref 0 in
        while !i < n do
          if Kmonitor.Ring.push r !i then begin
            incr pushed;
            incr i
          end
          (* on overflow, spin until the consumer catches up *)
        done;
        !pushed)
  in
  let received = ref [] in
  let count = ref 0 in
  while !count < n do
    match Kmonitor.Ring.pop r with
    | Some v ->
        received := v :: !received;
        incr count
    | None -> Domain.cpu_relax ()
  done;
  let pushed = Domain.join producer in
  Alcotest.(check int) "all pushed" n pushed;
  let got = List.rev !received in
  Alcotest.(check int) "all received" n (List.length got);
  Alcotest.(check bool) "in order" true
    (List.mapi (fun i v -> i = v) got |> List.for_all Fun.id)

let test_ring_cross_domain_batched () =
  (* same producer/consumer split, but the consumer drains in batches
     through pop_batch, which is how Chardev really reads the ring *)
  let r = Kmonitor.Ring.create 64 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while !i < n do
          if Kmonitor.Ring.push r !i then incr i
        done)
  in
  let received = ref [] in
  let count = ref 0 in
  while !count < n do
    match Kmonitor.Ring.pop_batch r ~max:17 with
    | [] -> Domain.cpu_relax ()
    | batch ->
        List.iter (fun v -> received := v :: !received) batch;
        count := !count + List.length batch
  done;
  Domain.join producer;
  let got = List.rev !received in
  Alcotest.(check int) "all received" n (List.length got);
  Alcotest.(check bool) "in order" true
    (List.mapi (fun i v -> i = v) got |> List.for_all Fun.id)

let qcheck_ring_sequential =
  QCheck.Test.make ~name:"ring behaves like a bounded FIFO queue" ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      (* Some n = push n, None = pop *)
      let r = Kmonitor.Ring.create 8 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let fits = Queue.length model < 8 in
              let accepted = Kmonitor.Ring.push r v in
              if accepted then Queue.push v model;
              accepted = fits
          | None -> (
              match (Kmonitor.Ring.pop r, Queue.take_opt model) with
              | None, None -> true
              | Some a, Some b -> a = b
              | _ -> false))
        ops)

(* --- dispatcher --------------------------------------------------------- *)

let mk_dispatcher () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Kmonitor.Dispatcher.create kernel)

let test_dispatcher_callbacks () =
  let _, d = mk_dispatcher () in
  let seen = ref 0 in
  Kmonitor.Dispatcher.register d ~name:"counter" (fun _ -> incr seen);
  Kmonitor.Dispatcher.log_event d (ev ());
  Kmonitor.Dispatcher.log_event d (ev ());
  Alcotest.(check int) "both delivered" 2 !seen;
  Kmonitor.Dispatcher.unregister d ~name:"counter";
  Kmonitor.Dispatcher.log_event d (ev ());
  Alcotest.(check int) "after unregister" 2 !seen;
  Alcotest.(check int) "events counted" 3 (Kmonitor.Dispatcher.events d)

let test_dispatcher_ring_feed () =
  let _, d = mk_dispatcher () in
  Kmonitor.Dispatcher.log_event d (ev ~obj:7 ());
  Alcotest.(check int) "ring off by default" 0
    (Kmonitor.Ring.length (Kmonitor.Dispatcher.ring d));
  Kmonitor.Dispatcher.enable_ring d;
  Kmonitor.Dispatcher.log_event d (ev ~obj:8 ());
  Alcotest.(check int) "ring fed" 1 (Kmonitor.Ring.length (Kmonitor.Dispatcher.ring d))

let test_dispatcher_install () =
  let kernel, d = mk_dispatcher () in
  Kmonitor.Dispatcher.install d;
  (* a spinlock acquire now reaches the dispatcher *)
  let l = Ksim.Spinlock.create "x" in
  Ksim.Spinlock.lock l;
  Ksim.Spinlock.unlock l;
  Kmonitor.Dispatcher.uninstall d;
  Ksim.Spinlock.lock l;
  Ksim.Spinlock.unlock l;
  ignore kernel;
  Alcotest.(check int) "only installed window seen" 2 (Kmonitor.Dispatcher.events d)

let test_dispatcher_charges () =
  let kernel, d = mk_dispatcher () in
  Kmonitor.Dispatcher.enable_ring d;
  let t0 = Ksim.Kernel.now kernel in
  Kmonitor.Dispatcher.log_event d (ev ());
  let cost = Ksim.Kernel.cost kernel in
  Alcotest.(check int) "dispatch + ring cost"
    (cost.Ksim.Cost_model.event_dispatch + cost.Ksim.Cost_model.ring_push)
    (Ksim.Kernel.now kernel - t0)

(* --- chardev + libkernevents -------------------------------------------- *)

let mk_stack () =
  let kernel, d = mk_dispatcher () in
  Kmonitor.Dispatcher.enable_ring d;
  let cd = Kmonitor.Chardev.create kernel d in
  (kernel, d, cd)

let test_chardev_batches () =
  let _, d, cd = mk_stack () in
  for i = 0 to 9 do
    Kmonitor.Dispatcher.log_event d (ev ~obj:i ())
  done;
  let batch = Kmonitor.Chardev.read cd ~max:4 in
  Alcotest.(check int) "batch size" 4 (List.length batch);
  Alcotest.(check int) "pending" 6 (Kmonitor.Chardev.pending cd);
  ignore (Kmonitor.Chardev.read cd ~max:100);
  Alcotest.(check int) "delivered" 10 (Kmonitor.Chardev.events_delivered cd);
  ignore (Kmonitor.Chardev.read cd ~max:100);
  Alcotest.(check int) "empty poll counted" 1 (Kmonitor.Chardev.empty_polls cd)

let test_libkernevents_polling_vs_blocking () =
  let kernel, d, cd = mk_stack () in
  let lib = Kmonitor.Libkernevents.create ~strategy:Kmonitor.Libkernevents.Polling cd in
  let polled = ref 0 in
  Kmonitor.Libkernevents.add_sink lib ~name:"n" (fun _ -> incr polled);
  Kmonitor.Dispatcher.log_event d (ev ());
  Kmonitor.Libkernevents.pump lib;
  Alcotest.(check int) "polling consumed" 1 !polled;
  (* polling pays for the trailing empty read *)
  Alcotest.(check bool) "empty polls happen" true (Kmonitor.Chardev.empty_polls cd >= 1);
  (* blocking with a high watermark doesn't touch the device when quiet *)
  let cd2 = Kmonitor.Chardev.create kernel d in
  let lib2 =
    Kmonitor.Libkernevents.create
      ~strategy:(Kmonitor.Libkernevents.Blocking { low_water = 5 }) cd2
  in
  Kmonitor.Libkernevents.pump lib2;
  Alcotest.(check int) "no reads while below watermark" 0 (Kmonitor.Chardev.reads cd2)

let test_libkernevents_drain () =
  let _, d, cd = mk_stack () in
  let lib = Kmonitor.Libkernevents.create cd in
  for _ = 1 to 100 do
    Kmonitor.Dispatcher.log_event d (ev ())
  done;
  Kmonitor.Libkernevents.drain lib;
  Alcotest.(check int) "all consumed" 100 (Kmonitor.Libkernevents.consumed lib);
  Alcotest.(check int) "ring empty" 0 (Kmonitor.Ring.length (Kmonitor.Dispatcher.ring d))

let test_chardev_reports_drops () =
  (* a tiny ring that overflows: the consumer must learn how many events
     it lost, per read and in total *)
  let kernel = Ksim.Kernel.create () in
  let d = Kmonitor.Dispatcher.create ~ring_capacity:4 kernel in
  Kmonitor.Dispatcher.enable_ring d;
  let cd = Kmonitor.Chardev.create kernel d in
  for i = 0 to 9 do
    Kmonitor.Dispatcher.log_event d (ev ~obj:i ())
  done;
  Alcotest.(check int) "ring dropped" 6 (Kmonitor.Chardev.dropped cd);
  let batch = Kmonitor.Chardev.read cd ~max:100 in
  Alcotest.(check int) "kept oldest" 4 (List.length batch);
  Alcotest.(check int) "drops reported by this read" 6
    (Kmonitor.Chardev.last_read_drops cd);
  ignore (Kmonitor.Chardev.read cd ~max:100);
  Alcotest.(check int) "no new drops" 0 (Kmonitor.Chardev.last_read_drops cd)

let test_libkernevents_drop_stats () =
  let kernel = Ksim.Kernel.create () in
  let d = Kmonitor.Dispatcher.create ~ring_capacity:4 kernel in
  Kmonitor.Dispatcher.enable_ring d;
  let cd = Kmonitor.Chardev.create kernel d in
  let lib = Kmonitor.Libkernevents.create cd in
  for i = 0 to 9 do
    Kmonitor.Dispatcher.log_event d (ev ~obj:i ())
  done;
  Kmonitor.Libkernevents.drain lib;
  let s = Kmonitor.Libkernevents.stats lib in
  Alcotest.(check int) "consumed" 4 s.Kmonitor.Libkernevents.consumed;
  Alcotest.(check int) "dropped" 6 s.Kmonitor.Libkernevents.dropped;
  Alcotest.(check int) "dropped accessor" 6 (Kmonitor.Libkernevents.dropped lib);
  Alcotest.(check bool) "reads issued" true (s.Kmonitor.Libkernevents.reads >= 1)

(* --- custom event names -------------------------------------------------- *)

let test_custom_event_names () =
  Ksim.Instrument.register_custom_name 42 "my-subsystem-event";
  Alcotest.(check string) "registered name" "my-subsystem-event"
    (Fmt.str "%a" Ksim.Instrument.pp_kind (Ksim.Instrument.Custom 42));
  Alcotest.(check string) "unregistered fallback" "custom-41"
    (Fmt.str "%a" Ksim.Instrument.pp_kind (Ksim.Instrument.Custom 41));
  Alcotest.(check (option string)) "lookup" (Some "my-subsystem-event")
    (Ksim.Instrument.custom_name 42)

(* --- stats feed ---------------------------------------------------------- *)

let test_stats_feed () =
  let kernel = Ksim.Kernel.create () in
  Kstats.set_enabled (Ksim.Kernel.stats kernel) true;
  let d = Kmonitor.Dispatcher.create kernel in
  Kmonitor.Dispatcher.enable_ring d;
  Kmonitor.Dispatcher.install d;
  let cd = Kmonitor.Chardev.create kernel d in
  (* one crossing recorded after enabling, so a reading is non-zero *)
  Ksim.Kernel.enter_kernel kernel;
  Ksim.Kernel.exit_kernel kernel;
  let feed = Kmonitor.Stats_feed.create kernel in
  Kmonitor.Stats_feed.emit feed;
  Kmonitor.Dispatcher.uninstall d;
  Alcotest.(check int) "one snapshot" 1 (Kmonitor.Stats_feed.snapshots feed);
  let events = Kmonitor.Chardev.read cd ~max:1000 in
  let metrics = List.filter_map Kmonitor.Stats_feed.decode events in
  (* one reading per registered metric, carrying the metric's name *)
  Alcotest.(check int) "one event per metric"
    (List.length (Kstats.names (Ksim.Kernel.stats kernel)))
    (List.length metrics);
  Alcotest.(check bool) "snapshot kind named" true
    (Fmt.str "%a" Ksim.Instrument.pp_kind
       (Ksim.Instrument.Custom Kmonitor.Stats_feed.snapshot_kind)
    = "kstats-snapshot");
  Alcotest.(check bool) "kernel.crossings captured" true
    (match List.assoc_opt "kernel.crossings" metrics with
    | Some v -> v >= 1
    | None -> false)

(* --- monitors ------------------------------------------------------------ *)

let test_refcount_monitor () =
  let m = Kmonitor.Monitors.refcount_monitor () in
  let cb = Kmonitor.Monitors.refcount_callback m in
  cb (ev ~obj:5 ~value:2 ~kind:Ksim.Instrument.Ref_inc ());
  cb (ev ~obj:5 ~value:1 ~kind:Ksim.Instrument.Ref_dec ());
  Alcotest.(check int) "no violations" 0 (List.length m.Kmonitor.Monitors.rc_violations);
  cb (ev ~obj:6 ~value:(-1) ~kind:Ksim.Instrument.Ref_dec ());
  Alcotest.(check int) "negative flagged" 1 (List.length m.Kmonitor.Monitors.rc_violations);
  (* leak report: object 5 rests at 1 > 0 *)
  let leaks = Kmonitor.Monitors.refcount_leaks m ~resting:0 in
  Alcotest.(check bool) "leak candidate" true (List.mem_assoc 5 leaks)

let test_spinlock_monitor () =
  let m = Kmonitor.Monitors.spinlock_monitor () in
  let cb = Kmonitor.Monitors.spinlock_callback m in
  cb (ev ~obj:1 ~kind:Ksim.Instrument.Lock ());
  cb (ev ~obj:1 ~kind:Ksim.Instrument.Unlock ());
  Alcotest.(check int) "balanced ok" 0 (List.length m.Kmonitor.Monitors.sl_violations);
  cb (ev ~obj:1 ~kind:Ksim.Instrument.Unlock ());
  Alcotest.(check int) "double unlock flagged" 1
    (List.length m.Kmonitor.Monitors.sl_violations);
  cb (ev ~obj:2 ~kind:Ksim.Instrument.Lock ());
  cb (ev ~obj:2 ~kind:Ksim.Instrument.Lock ());
  Alcotest.(check int) "double lock flagged" 2
    (List.length m.Kmonitor.Monitors.sl_violations);
  Alcotest.(check bool) "still held at end" true
    (List.mem_assoc 2 (Kmonitor.Monitors.spinlocks_still_held m))

let test_contention_monitor () =
  let m = Kmonitor.Monitors.contention_monitor () in
  let cb = Kmonitor.Monitors.contention_callback m in
  (* Contended events carry the spin cycles charged as their value *)
  cb (ev ~obj:7 ~value:1_500 ~kind:Ksim.Instrument.Contended ());
  cb (ev ~obj:7 ~value:500 ~kind:Ksim.Instrument.Contended ());
  cb (ev ~obj:9 ~value:100 ~kind:Ksim.Instrument.Contended ());
  (* uncontended traffic is not counted *)
  cb (ev ~obj:7 ~kind:Ksim.Instrument.Lock ());
  cb (ev ~obj:7 ~kind:Ksim.Instrument.Unlock ());
  Alcotest.(check int) "events" 3 m.Kmonitor.Monitors.cn_events;
  Alcotest.(check int) "total spin" 2_100 m.Kmonitor.Monitors.cn_spin_cycles;
  match Kmonitor.Monitors.hottest_locks m with
  | (obj, hits, spin) :: rest ->
      Alcotest.(check int) "hottest is 7" 7 obj;
      Alcotest.(check int) "two contentions" 2 hits;
      Alcotest.(check int) "its spin" 2_000 spin;
      Alcotest.(check int) "one more lock" 1 (List.length rest)
  | [] -> Alcotest.fail "no hot locks"

let test_irq_monitor () =
  let m = Kmonitor.Monitors.irq_monitor () in
  let cb = Kmonitor.Monitors.irq_callback m in
  cb (ev ~kind:Ksim.Instrument.Irq_disable ());
  cb (ev ~kind:Ksim.Instrument.Irq_enable ());
  Alcotest.(check int) "balanced" 0 (List.length m.Kmonitor.Monitors.irq_violations);
  cb (ev ~kind:Ksim.Instrument.Irq_enable ());
  Alcotest.(check int) "unbalanced flagged" 1
    (List.length m.Kmonitor.Monitors.irq_violations)

let test_net_monitor () =
  let m = Kmonitor.Monitors.net_monitor () in
  let cb = Kmonitor.Monitors.net_callback m in
  let kind = Ksim.Instrument.Custom Kmonitor.Monitors.net_backlog_drop_kind in
  (* the event's value carries the listener's running total: replace,
     don't accumulate *)
  cb (ev ~obj:80 ~value:1 ~kind ());
  cb (ev ~obj:80 ~value:2 ~kind ());
  cb (ev ~obj:8080 ~value:1 ~kind ());
  (* other custom kinds are not ours *)
  cb (ev ~obj:99 ~value:7 ~kind:(Ksim.Instrument.Custom 11) ());
  Alcotest.(check int) "events" 3 m.Kmonitor.Monitors.nm_events;
  (match Kmonitor.Monitors.hottest_listeners m with
  | (port, drops) :: _ ->
      Alcotest.(check int) "hottest port" 80 port;
      Alcotest.(check int) "its drops" 2 drops
  | [] -> Alcotest.fail "no listeners seen");
  (* live: a real backlog overflow flows from knet through the
     dispatcher and the monitor names the hot listening socket *)
  let kernel = Ksim.Kernel.create () in
  let d = Kmonitor.Dispatcher.create kernel in
  let std = Kmonitor.Monitors.register_standard d in
  Kmonitor.Dispatcher.install d;
  let net = Knet.create kernel in
  let s = Knet.socket net in
  ignore (Knet.bind net ~sock:s ~port:80);
  ignore (Knet.listen net ~sock:s ~backlog:1);
  ignore (Knet.inject_connect net ~port:80);
  ignore (Knet.inject_connect net ~port:80);
  ignore (Knet.inject_connect net ~port:80);
  Kmonitor.Dispatcher.uninstall d;
  Alcotest.(check (list (pair int int)))
    "monitor names the hot listener" [ (80, 2) ]
    (Kmonitor.Monitors.hottest_listeners std.Kmonitor.Monitors.net);
  Alcotest.(check bool) "drop kind registered by name" true
    (Fmt.str "%a" Ksim.Instrument.pp_kind
       (Ksim.Instrument.Custom Knet.backlog_drop_kind)
    = "net-backlog-drop")

let test_standard_monitors_end_to_end () =
  let kernel = Ksim.Kernel.create () in
  let d = Kmonitor.Dispatcher.create kernel in
  let std = Kmonitor.Monitors.register_standard d in
  Kmonitor.Dispatcher.install d;
  (* drive real kernel objects *)
  let l = Ksim.Spinlock.create "live" in
  Ksim.Spinlock.lock l;
  Ksim.Spinlock.unlock l;
  let rc = Ksim.Refcount.create "obj" in
  Ksim.Refcount.get rc;
  ignore (Ksim.Refcount.put rc);
  Ksim.Kernel.irq_disable kernel;
  Ksim.Kernel.irq_enable kernel;
  Kmonitor.Dispatcher.uninstall d;
  Alcotest.(check int) "no violations from healthy code" 0
    (List.length (Kmonitor.Monitors.all_violations std));
  Alcotest.(check int) "lock acquisitions observed" 1
    std.Kmonitor.Monitors.spinlocks.Kmonitor.Monitors.sl_acquisitions

(* --- rule language (the 3.5 aspect-style plan) ------------------------------- *)

let test_mfilter_parse_and_match () =
  let m rule e = Kmonitor.Mfilter.compile rule e in
  let e1 = ev ~obj:3 ~value:2 ~kind:Ksim.Instrument.Ref_inc ~file:"memfs.ml" () in
  let e2 = ev ~obj:4 ~value:(-1) ~kind:Ksim.Instrument.Ref_dec ~file:"dcache.ml" () in
  Alcotest.(check bool) "kind match" true (m "ref-inc,ref-dec" e1);
  Alcotest.(check bool) "kind mismatch" false (m "lock,unlock" e1);
  Alcotest.(check bool) "wildcard" true (m "*" e1);
  Alcotest.(check bool) "obj filter" true (m "* obj=3" e1);
  Alcotest.(check bool) "obj filter out" false (m "* obj=3" e2);
  Alcotest.(check bool) "file prefix" true (m "* @ memfs" e1);
  Alcotest.(check bool) "file prefix out" false (m "* @ memfs" e2);
  Alcotest.(check bool) "value<0 catches underflow" true (m "* value<0" e2);
  Alcotest.(check bool) "value<0 passes healthy" false (m "* value<0" e1);
  Alcotest.(check bool) "combined" true (m "ref-dec @ dcache value<0" e2)

let test_mfilter_bad_rules () =
  let bad rule =
    try
      let (_ : Ksim.Instrument.event -> bool) = Kmonitor.Mfilter.compile rule in
      Alcotest.failf "rule %S should be rejected" rule
    with Kmonitor.Mfilter.Bad_rule _ -> ()
  in
  bad "";
  bad "no-such-kind";
  bad "* obj=banana";
  bad "* @"

let test_mfilter_subscribe () =
  let _, d = mk_dispatcher () in
  let negatives = ref 0 in
  Kmonitor.Mfilter.subscribe d ~rule:"ref-dec value<0" ~name:"underflows"
    (fun _ -> incr negatives);
  Kmonitor.Dispatcher.log_event d (ev ~value:3 ~kind:Ksim.Instrument.Ref_dec ());
  Kmonitor.Dispatcher.log_event d (ev ~value:(-2) ~kind:Ksim.Instrument.Ref_dec ());
  Kmonitor.Dispatcher.log_event d (ev ~value:(-2) ~kind:Ksim.Instrument.Lock ());
  Alcotest.(check int) "only the matching event" 1 !negatives

(* --- disk logger ----------------------------------------------------------- *)

let test_disk_logger () =
  let kernel, d, cd = mk_stack () in
  let lib = Kmonitor.Libkernevents.create cd in
  let logger = Kmonitor.Disk_logger.create kernel lib in
  for _ = 1 to 10 do
    Kmonitor.Dispatcher.log_event d (ev ())
  done;
  let t0 = Ksim.Kernel.now kernel in
  Kmonitor.Disk_logger.drain logger;
  Alcotest.(check int) "records" 10 (Kmonitor.Disk_logger.records_written logger);
  Alcotest.(check int) "bytes" (10 * Kmonitor.Disk_logger.record_size)
    (Kmonitor.Disk_logger.bytes_written logger);
  let cost = Ksim.Kernel.cost kernel in
  Alcotest.(check bool) "disk writes charged" true
    (Ksim.Kernel.now kernel - t0 >= 10 * cost.Ksim.Cost_model.log_write_per_event)

let test_disk_logger_no_write_mode () =
  let kernel, d, cd = mk_stack () in
  let lib = Kmonitor.Libkernevents.create cd in
  let logger = Kmonitor.Disk_logger.create ~write_to_disk:false kernel lib in
  for _ = 1 to 5 do
    Kmonitor.Dispatcher.log_event d (ev ())
  done;
  Kmonitor.Disk_logger.drain logger;
  Alcotest.(check int) "records still counted" 5
    (Kmonitor.Disk_logger.records_written logger)

let () =
  Alcotest.run "kmonitor"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "overflow drops" `Quick test_ring_overflow_drops;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "cross domain" `Quick test_ring_cross_domain;
          Alcotest.test_case "cross domain batched" `Quick
            test_ring_cross_domain_batched;
          QCheck_alcotest.to_alcotest qcheck_ring_sequential;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "callbacks" `Quick test_dispatcher_callbacks;
          Alcotest.test_case "ring feed" `Quick test_dispatcher_ring_feed;
          Alcotest.test_case "install" `Quick test_dispatcher_install;
          Alcotest.test_case "charges" `Quick test_dispatcher_charges;
        ] );
      ( "chardev",
        [
          Alcotest.test_case "batches" `Quick test_chardev_batches;
          Alcotest.test_case "polling vs blocking" `Quick test_libkernevents_polling_vs_blocking;
          Alcotest.test_case "drain" `Quick test_libkernevents_drain;
          Alcotest.test_case "drop reporting" `Quick test_chardev_reports_drops;
          Alcotest.test_case "drop stats" `Quick test_libkernevents_drop_stats;
        ] );
      ( "stats-feed",
        [
          Alcotest.test_case "custom names" `Quick test_custom_event_names;
          Alcotest.test_case "snapshot events" `Quick test_stats_feed;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "refcount" `Quick test_refcount_monitor;
          Alcotest.test_case "spinlock" `Quick test_spinlock_monitor;
          Alcotest.test_case "irq" `Quick test_irq_monitor;
          Alcotest.test_case "contention" `Quick test_contention_monitor;
          Alcotest.test_case "net backpressure" `Quick test_net_monitor;
          Alcotest.test_case "end to end" `Quick test_standard_monitors_end_to_end;
        ] );
      ( "mfilter",
        [
          Alcotest.test_case "parse+match" `Quick test_mfilter_parse_and_match;
          Alcotest.test_case "bad rules" `Quick test_mfilter_bad_rules;
          Alcotest.test_case "subscribe" `Quick test_mfilter_subscribe;
        ] );
      ( "disk-logger",
        [
          Alcotest.test_case "writes" `Quick test_disk_logger;
          Alcotest.test_case "no-write mode" `Quick test_disk_logger_no_write_mode;
        ] );
    ]
