(* Tests for Kefence: guard-page allocation, overflow/underflow
   detection, the four reaction modes, and reporting. *)

let mk () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Ksim.Kernel.kspace kernel)

let write space addr s =
  Ksim.Address_space.write_string ~pc:"test_kefence.ml:write" space ~addr s

let read space addr len =
  Ksim.Address_space.read_string ~pc:"test_kefence.ml:read" space ~addr ~len

let test_alloc_free () =
  let kernel, space = mk () in
  let kf = Kefence.create kernel in
  let a = Kefence.alloc kf 100 in
  write space a (String.make 100 'x');
  Alcotest.(check string) "full buffer usable" (String.make 100 'x')
    (read space a 100);
  Alcotest.(check int) "one live" 1 (Kefence.live_buffers kf);
  Kefence.free kf a;
  Alcotest.(check int) "freed" 0 (Kefence.live_buffers kf);
  Alcotest.check_raises "double free"
    (Invalid_argument "Kefence.free: not a kefence buffer") (fun () ->
      Kefence.free kf a)

let test_overflow_crash_mode () =
  let kernel, space = mk () in
  let kf = Kefence.create ~mode:Kefence.Crash kernel in
  let a = Kefence.alloc kf 64 in
  (* one byte past the end lands on the guardian *)
  (try
     write space (a + 64) "!";
     Alcotest.fail "expected guardian fault"
   with Ksim.Fault.Fault f ->
     Alcotest.(check bool) "guardian" true
       (f.Ksim.Fault.reason = Ksim.Fault.Guardian));
  Alcotest.(check int) "detected" 1 (Kefence.overflows_detected kf);
  match Kefence.reports kf with
  | [ r ] ->
      Alcotest.(check (option int)) "buffer identified" (Some a) r.Kefence.buffer;
      Alcotest.(check (option int)) "size recorded" (Some 64) r.Kefence.buffer_size;
      Alcotest.(check string) "pc recorded" "test_kefence.ml:write" r.Kefence.pc
  | _ -> Alcotest.fail "expected one report"

let test_first_oob_byte_faults () =
  (* the buffer is placed flush against the guardian so even a 1-byte
     allocation traps on the very first out-of-bounds byte *)
  let kernel, space = mk () in
  let kf = Kefence.create kernel in
  let a = Kefence.alloc kf 1 in
  write space a "x";
  try
    write space (a + 1) "y";
    Alcotest.fail "expected fault"
  with Ksim.Fault.Fault _ -> ()

let test_log_only_mode () =
  let kernel, space = mk () in
  let kf = Kefence.create ~mode:Kefence.Log_only kernel in
  let a = Kefence.alloc kf 32 in
  (* overflow suppressed, execution continues *)
  write space (a + 32) "!";
  write space (a + 33) "!";
  Alcotest.(check int) "both logged" 2 (Kefence.overflows_detected kf);
  Alcotest.(check int) "syslog lines" 2 (List.length (Kefence.syslog kf))

let test_auto_map_rw_mode () =
  let kernel, space = mk () in
  let kf = Kefence.create ~mode:Kefence.Auto_map_rw kernel in
  let a = Kefence.alloc kf 16 in
  write space (a + 16) "Z";
  (* the auto-mapped page is real memory now: value readable, and only
     the first access reported *)
  Alcotest.(check string) "oob value readable" "Z" (read space (a + 16) 1);
  write space (a + 17) "Y";
  Alcotest.(check int) "single report per page" 1 (Kefence.overflows_detected kf)

let test_auto_map_ro_mode () =
  let kernel, space = mk () in
  let kf = Kefence.create ~mode:Kefence.Auto_map_ro kernel in
  let a = Kefence.alloc kf 16 in
  (* reads succeed (zero-filled page) *)
  Alcotest.(check string) "oob read ok" "\000" (read space (a + 16) 1);
  (* writes still kill *)
  try
    write space (a + 16) "!";
    Alcotest.fail "expected fault"
  with Ksim.Fault.Fault _ -> ()

let test_underflow_protection () =
  let kernel, space = mk () in
  let kf = Kefence.create ~protect:Kefence.Underflow kernel in
  let a = Kefence.alloc kf 64 in
  write space a (String.make 64 'v');
  (* one byte before the buffer traps *)
  try
    write space (a - 1) "!";
    Alcotest.fail "expected underflow fault"
  with Ksim.Fault.Fault f ->
    Alcotest.(check bool) "guardian" true
      (f.Ksim.Fault.reason = Ksim.Fault.Guardian)

let test_page_multiple_both_guarded () =
  (* allocations that are a multiple of the page size are end-aligned
     AND start page-aligned, detecting overflow; underflow detection for
     them needs the other mode, as the paper notes *)
  let kernel, space = mk () in
  let kf = Kefence.create kernel in
  let a = Kefence.alloc kf 4096 in
  Alcotest.(check int) "page aligned" 0 (a mod 4096);
  write space a (String.make 4096 'p');
  try
    write space (a + 4096) "!";
    Alcotest.fail "expected fault"
  with Ksim.Fault.Fault _ -> ()

let test_non_kefence_faults_pass_through () =
  let kernel, space = mk () in
  let _kf = Kefence.create ~mode:Kefence.Auto_map_rw kernel in
  (* a plain not-present fault is not swallowed by the kefence handler *)
  try
    ignore (read space 0x7777_0000 1);
    Alcotest.fail "expected fault"
  with Ksim.Fault.Fault f ->
    Alcotest.(check bool) "not-present preserved" true
      (f.Ksim.Fault.reason = Ksim.Fault.Not_present)

let test_wrapfs_with_kefence_catches_injected_bug () =
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash } in
  (match Core.wrapfs t with
  | Some w -> Kvfs.Wrapfs.inject_overflow w 4200
  | None -> Alcotest.fail "no wrapfs");
  (try
     ignore
       (Core.Syscall.sys_open (Core.sys t) ~path:"/boom" ~flags:Core.o_create);
     Alcotest.fail "expected fault"
   with Ksim.Fault.Fault f ->
     Alcotest.(check bool) "guardian" true
       (f.Ksim.Fault.reason = Ksim.Fault.Guardian));
  match Core.kefence t with
  | Some kf -> Alcotest.(check int) "reported" 1 (Kefence.overflows_detected kf)
  | None -> Alcotest.fail "no kefence"

let test_wrapfs_with_kefence_clean_run () =
  (* with no injected bug, a full workload triggers zero reports *)
  let t = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash } in
  let sys = Core.sys t in
  Workloads.Lsdir.setup sys ~dir:"/d" ~n:50;
  ignore (Workloads.Lsdir.run_plain sys ~dir:"/d");
  match Core.kefence t with
  | Some kf -> Alcotest.(check int) "no false positives" 0 (Kefence.overflows_detected kf)
  | None -> Alcotest.fail "no kefence"

let test_dynamic_policy_trusts_sites () =
  let kernel, space = mk () in
  ignore space;
  let kf =
    Kefence.create ~dynamic:{ Kefence.trust_site_after = 3 } kernel
  in
  (* first three allocations from a site are guarded; later ones are not *)
  let addrs = List.init 6 (fun _ -> Kefence.alloc ~site:"wrapfs.c:42" kf 64) in
  Alcotest.(check int) "three unguarded" 3 (Kefence.unguarded_allocs kf);
  Alcotest.(check int) "three guarded live" 3 (Kefence.live_buffers kf);
  (* frees route to the right allocator *)
  List.iter (Kefence.free kf) addrs;
  Alcotest.(check int) "all guarded freed" 0 (Kefence.live_buffers kf)

let test_dynamic_policy_distrust () =
  let kernel, _ = mk () in
  let kf = Kefence.create ~dynamic:{ Kefence.trust_site_after = 1 } kernel in
  ignore (Kefence.alloc ~site:"s" kf 8);
  ignore (Kefence.alloc ~site:"s" kf 8);
  Alcotest.(check int) "second alloc unguarded" 1 (Kefence.unguarded_allocs kf);
  (* after an overflow is blamed on the site, it is guarded again *)
  Kefence.distrust_site kf "s";
  ignore (Kefence.alloc ~site:"s" kf 8);
  Alcotest.(check int) "guarded once more" 1 (Kefence.unguarded_allocs kf)

let test_dynamic_policy_anonymous_sites_always_guarded () =
  let kernel, _ = mk () in
  let kf = Kefence.create ~dynamic:{ Kefence.trust_site_after = 1 } kernel in
  for _ = 1 to 5 do
    ignore (Kefence.alloc kf 16)
  done;
  Alcotest.(check int) "no site, no trust" 0 (Kefence.unguarded_allocs kf)

let qcheck_no_false_positives =
  QCheck.Test.make ~name:"in-bounds access never faults" ~count:100
    QCheck.(pair (int_range 1 5000) (int_range 0 99))
    (fun (size, seed) ->
      let kernel, space = mk () in
      ignore kernel;
      let kf = Kefence.create kernel in
      let a = Kefence.alloc kf size in
      let off = seed * (max 1 (size - 1)) / 99 in
      let off = min off (size - 1) in
      write space (a + off) "x";
      read space (a + off) 1 = "x")

let () =
  Alcotest.run "kefence"
    [
      ( "alloc",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "first oob byte" `Quick test_first_oob_byte_faults;
          Alcotest.test_case "page multiple" `Quick test_page_multiple_both_guarded;
          QCheck_alcotest.to_alcotest qcheck_no_false_positives;
        ] );
      ( "modes",
        [
          Alcotest.test_case "crash" `Quick test_overflow_crash_mode;
          Alcotest.test_case "log only" `Quick test_log_only_mode;
          Alcotest.test_case "auto-map rw" `Quick test_auto_map_rw_mode;
          Alcotest.test_case "auto-map ro" `Quick test_auto_map_ro_mode;
          Alcotest.test_case "underflow" `Quick test_underflow_protection;
          Alcotest.test_case "pass-through" `Quick test_non_kefence_faults_pass_through;
        ] );
      ( "dynamic-policy",
        [
          Alcotest.test_case "trusts sites" `Quick test_dynamic_policy_trusts_sites;
          Alcotest.test_case "distrust" `Quick test_dynamic_policy_distrust;
          Alcotest.test_case "anonymous guarded" `Quick
            test_dynamic_policy_anonymous_sites_always_guarded;
        ] );
      ( "integration",
        [
          Alcotest.test_case "catches injected wrapfs bug" `Quick
            test_wrapfs_with_kefence_catches_injected_bug;
          Alcotest.test_case "clean workload" `Quick test_wrapfs_with_kefence_clean_run;
        ] );
    ]
