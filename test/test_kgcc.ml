(* Tests for KGCC: the splay-tree address map, the object map with OOB
   peers, the runtime checks, the instrumentation pass, check-CSE, and
   dynamic deinstrumentation. *)

(* --- splay tree ------------------------------------------------------------ *)

let test_splay_basic () =
  let t = Kgcc.Splay.create () in
  Kgcc.Splay.insert t ~base:100 ~size:10 ~meta:"a";
  Kgcc.Splay.insert t ~base:200 ~size:20 ~meta:"b";
  Kgcc.Splay.insert t ~base:50 ~size:5 ~meta:"c";
  Alcotest.(check int) "count" 3 (Kgcc.Splay.size t);
  (match Kgcc.Splay.find_containing t 105 with
  | Some (100, 10, "a") -> ()
  | _ -> Alcotest.fail "find 105");
  (match Kgcc.Splay.find_containing t 219 with
  | Some (200, 20, "b") -> ()
  | _ -> Alcotest.fail "find 219");
  Alcotest.(check bool) "boundary excluded" true
    (Kgcc.Splay.find_containing t 110 = None);
  Alcotest.(check bool) "gap" true (Kgcc.Splay.find_containing t 70 = None);
  Alcotest.(check bool) "remove" true (Kgcc.Splay.remove t ~base:100);
  Alcotest.(check bool) "gone" true (Kgcc.Splay.find_containing t 105 = None);
  Alcotest.(check bool) "remove missing" false (Kgcc.Splay.remove t ~base:100)

let test_splay_locality () =
  (* repeated access to the same object costs fewer rotations than
     round-robin access over many objects: the paper's rationale *)
  let mk n =
    let t = Kgcc.Splay.create () in
    for i = 0 to n - 1 do
      Kgcc.Splay.insert t ~base:(i * 100) ~size:50 ~meta:i
    done;
    t
  in
  let t1 = mk 100 in
  Kgcc.Splay.reset_stats t1;
  for _ = 1 to 1000 do
    ignore (Kgcc.Splay.find_containing t1 4210)
  done;
  let local = Kgcc.Splay.rotations t1 in
  let t2 = mk 100 in
  Kgcc.Splay.reset_stats t2;
  for i = 1 to 1000 do
    ignore (Kgcc.Splay.find_containing t2 (i * 97 mod 100 * 100))
  done;
  let scattered = Kgcc.Splay.rotations t2 in
  Alcotest.(check bool) "locality cheaper" true (local < scattered)

let qcheck_splay_vs_reference =
  (* random interleaving of inserts/removes/queries matches a naive
     association-list implementation *)
  let module M = Map.Make (Int) in
  QCheck.Test.make ~name:"splay matches reference map" ~count:200
    QCheck.(list (pair (int_bound 2) (int_bound 50)))
    (fun ops ->
      let t = Kgcc.Splay.create () in
      let reference = ref M.empty in
      List.for_all
        (fun (op, k) ->
          let base = k * 10 in
          match op with
          | 0 ->
              Kgcc.Splay.insert t ~base ~size:10 ~meta:k;
              reference := M.add base (10, k) !reference;
              true
          | 1 ->
              let expected = M.mem base !reference in
              reference := M.remove base !reference;
              Kgcc.Splay.remove t ~base = expected
          | _ ->
              let addr = base + 5 in
              let expected =
                M.fold
                  (fun b (s, m) acc ->
                    if b <= addr && addr < b + s then Some (b, s, m) else acc)
                  !reference None
              in
              Kgcc.Splay.find_containing t addr = expected)
        ops)

(* --- object map ------------------------------------------------------------- *)

let test_objmap_oob_peers () =
  let m = Kgcc.Objmap.create () in
  Kgcc.Objmap.register m ~base:1000 ~size:100 ~kind:Kgcc.Objmap.Heap ~name:"buf";
  (match Kgcc.Objmap.classify m 1050 with
  | Kgcc.Objmap.In_bounds { base = 1000; _ } -> ()
  | _ -> Alcotest.fail "in bounds");
  Alcotest.(check bool) "outside unknown" true
    (Kgcc.Objmap.classify m 1200 = Kgcc.Objmap.Unknown);
  Kgcc.Objmap.make_peer m ~obj_base:1000 ~addr:1200;
  (match Kgcc.Objmap.classify m 1200 with
  | Kgcc.Objmap.Oob { peer_base = 1000 } -> ()
  | _ -> Alcotest.fail "peer classified");
  (* the peer's owner is the original object *)
  (match Kgcc.Objmap.owner m 1200 with
  | Some (1000, 100, _) -> ()
  | _ -> Alcotest.fail "owner via peer");
  Kgcc.Objmap.drop_peer m ~addr:1200;
  Alcotest.(check bool) "peer dropped" true
    (Kgcc.Objmap.classify m 1200 = Kgcc.Objmap.Unknown)

(* --- runtime checks ---------------------------------------------------------- *)

let mk_rt ?deinstrument_after () =
  let clock = Ksim.Sim_clock.create () in
  Kgcc.Kgcc_runtime.create ?deinstrument_after ~clock ~cost:Ksim.Cost_model.default ()

let test_check_deref () =
  let rt = mk_rt () in
  Kgcc.Objmap.register (Kgcc.Kgcc_runtime.objmap rt) ~base:500 ~size:64
    ~kind:Kgcc.Objmap.Heap ~name:"b";
  Alcotest.(check int) "in bounds returns pointer" 500
    (Kgcc.Kgcc_runtime.check_deref rt 500 8 1);
  Alcotest.(check int) "last byte ok" 563
    (Kgcc.Kgcc_runtime.check_deref rt 563 1 2);
  (try
     ignore (Kgcc.Kgcc_runtime.check_deref rt 560 8 3);
     Alcotest.fail "expected straddling violation"
   with Kgcc.Kgcc_runtime.Bounds_violation { line; _ } ->
     Alcotest.(check int) "line" 3 line);
  try
    ignore (Kgcc.Kgcc_runtime.check_deref rt 9999 1 4);
    Alcotest.fail "expected unknown violation"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_check_arith_oob_cycle () =
  let rt = mk_rt () in
  let m = Kgcc.Kgcc_runtime.objmap rt in
  Kgcc.Objmap.register m ~base:500 ~size:64 ~kind:Kgcc.Objmap.Heap ~name:"b";
  (* ptr+i beyond the end: allowed, creates a peer *)
  let oob = Kgcc.Kgcc_runtime.check_arith rt 500 600 1 in
  Alcotest.(check int) "value passes through" 600 oob;
  (* dereferencing the peer is a violation *)
  (try
     ignore (Kgcc.Kgcc_runtime.check_deref rt 600 1 2);
     Alcotest.fail "expected oob deref violation"
   with Kgcc.Kgcc_runtime.Bounds_violation _ -> ());
  (* arithmetic on the peer returning into bounds is fine again *)
  let back = Kgcc.Kgcc_runtime.check_arith rt 600 520 3 in
  Alcotest.(check int) "back in bounds" 520
    (Kgcc.Kgcc_runtime.check_deref rt back 1 4);
  (* arithmetic on a completely unknown pointer is a violation *)
  try
    ignore (Kgcc.Kgcc_runtime.check_arith rt 123456 123457 5);
    Alcotest.fail "expected unknown arith violation"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_one_past_end_is_legal_edge () =
  let rt = mk_rt () in
  Kgcc.Objmap.register (Kgcc.Kgcc_runtime.objmap rt) ~base:500 ~size:64
    ~kind:Kgcc.Objmap.Heap ~name:"b";
  (* &b[64] is legal C to form but not to dereference *)
  let e = Kgcc.Kgcc_runtime.check_arith rt 500 564 1 in
  Alcotest.(check int) "formed" 564 e;
  try
    ignore (Kgcc.Kgcc_runtime.check_deref rt 564 1 2);
    Alcotest.fail "expected violation"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_check_range () =
  let rt = mk_rt () in
  Kgcc.Objmap.register (Kgcc.Kgcc_runtime.objmap rt) ~base:0x1000 ~size:128
    ~kind:Kgcc.Objmap.Heap ~name:"r";
  Alcotest.(check int) "whole object" 0x1000
    (Kgcc.Kgcc_runtime.check_range rt 0x1000 128 1);
  try
    ignore (Kgcc.Kgcc_runtime.check_range rt 0x1000 129 2);
    Alcotest.fail "expected range violation"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

(* --- instrumentation --------------------------------------------------------- *)

let mk_interp () =
  let clock = Ksim.Sim_clock.create () in
  let mem = Ksim.Phys_mem.create ~page_size:4096 in
  let space =
    Ksim.Address_space.create ~name:"i" ~mem ~clock ~cost:Ksim.Cost_model.zero ()
  in
  ( clock,
    Minic.Interp.create ~space ~clock ~cost:Ksim.Cost_model.zero ~base_vpn:16
      ~pages:64 )

(* run [src] under KGCC instrumentation; returns (result, runtime stats) *)
let run_instrumented ?deinstrument_after ?(optimize = true) ?(fn = "main") src =
  let clock, interp = mk_interp () in
  let rt =
    Kgcc.Kgcc_runtime.create ?deinstrument_after ~clock
      ~cost:Ksim.Cost_model.zero ()
  in
  Kgcc.Kgcc_runtime.attach rt interp;
  let p = Minic.Parser.parse_program src in
  let result = Kgcc.Compile.compile ~optimize p in
  ignore (Minic.Interp.load_program interp result.Kgcc.Compile.program);
  let v = Minic.Interp.run interp fn in
  (v, Kgcc.Kgcc_runtime.stats rt, result)

let sum_prog =
  {|
int main(void) {
  int a[10];
  int i;
  int s = 0;
  for (i = 0; i < 10; i++) a[i] = i;
  for (i = 0; i < 10; i++) s += a[i];
  return s;
}
|}

let test_instrumented_same_result () =
  let v, stats, _ = run_instrumented sum_prog in
  Alcotest.(check int) "sum preserved" 45 v;
  Alcotest.(check bool) "checks ran" true (stats.Kgcc.Kgcc_runtime.checks_executed > 10);
  Alcotest.(check int) "no violations" 0 stats.Kgcc.Kgcc_runtime.violations

let test_instrumented_catches_overflow () =
  let src =
    {|
int main(void) {
  int a[10];
  int i;
  for (i = 0; i <= 10; i++) a[i] = i;  /* classic off-by-one */
  return 0;
}
|}
  in
  try
    ignore (run_instrumented src);
    Alcotest.fail "expected bounds violation"
  with Kgcc.Kgcc_runtime.Bounds_violation { line; _ } ->
    Alcotest.(check int) "flagged the write" 5 line

let test_instrumented_catches_heap_overflow () =
  let src =
    {|
int main(void) {
  char *p = malloc(8);
  p[8] = 1;
  return 0;
}
|}
  in
  try
    ignore (run_instrumented src);
    Alcotest.fail "expected heap violation"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_instrumented_catches_use_after_free () =
  let src =
    {|
int main(void) {
  char *p = malloc(8);
  free(p);
  return p[0];
}
|}
  in
  try
    ignore (run_instrumented src);
    Alcotest.fail "expected use-after-free"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_strcpy_checked () =
  let src =
    {|
int main(void) {
  char *p = malloc(4);
  strcpy(p, "way too long for four bytes");
  return 0;
}
|}
  in
  try
    ignore (run_instrumented src);
    Alcotest.fail "expected strcpy overflow"
  with
  | Kgcc.Kgcc_runtime.Bounds_violation _ -> ()
  | Ksim.Fault.Fault _ -> Alcotest.fail "hardware fault instead of check"

let test_register_locals_unchecked () =
  (* scalars whose address is never taken produce no checks at all *)
  let src = "int main(void) { int x = 1; int y = 2; return x + y; }" in
  let v, stats, result = run_instrumented src in
  Alcotest.(check int) "result" 3 v;
  Alcotest.(check int) "no checks inserted" 0
    (result.Kgcc.Compile.checks_inserted - result.Kgcc.Compile.checks_removed);
  Alcotest.(check int) "none executed" 0 stats.Kgcc.Kgcc_runtime.checks_executed

let test_code_size_growth () =
  let p = Minic.Parser.parse_program sum_prog in
  let r = Kgcc.Compile.compile ~optimize:false p in
  Alcotest.(check bool) "instrumented code is larger" true
    (r.Kgcc.Compile.size_after > r.Kgcc.Compile.size_before);
  Alcotest.(check bool) "checks inserted" true (r.Kgcc.Compile.checks_inserted > 0)

(* --- check-CSE ---------------------------------------------------------------- *)

let test_cse_removes_repeated_checks () =
  let src =
    {|
int get(int *p) {
  return *p + *p + *p;
}
|}
  in
  let p = Minic.Parser.parse_program src in
  let no_opt = Kgcc.Compile.compile ~optimize:false p in
  let p2 = Minic.Parser.parse_program src in
  let opt = Kgcc.Compile.compile ~optimize:true p2 in
  Alcotest.(check int) "three checks without CSE" 3
    no_opt.Kgcc.Compile.checks_inserted;
  Alcotest.(check int) "two removed by CSE" 2 opt.Kgcc.Compile.checks_removed

let test_cse_respects_reassignment () =
  let src =
    {|
int get(int *p, int *q) {
  int a = *p;
  p = q;
  int b = *p;
  return a + b;
}
|}
  in
  let p = Minic.Parser.parse_program src in
  let opt = Kgcc.Compile.compile ~optimize:true p in
  (* the second deref is through a different pointer value: not removable *)
  Alcotest.(check int) "nothing removed" 0 opt.Kgcc.Compile.checks_removed

let test_cse_invalidated_by_free () =
  let src =
    {|
int main(void) {
  char *p = malloc(4);
  p[0] = 1;
  free(p);
  p[0] = 2;
  return 0;
}
|}
  in
  (* CSE must NOT remove the second check: free invalidates *)
  try
    ignore (run_instrumented ~optimize:true src);
    Alcotest.fail "expected use-after-free caught"
  with Kgcc.Kgcc_runtime.Bounds_violation _ -> ()

let test_cse_preserves_semantics () =
  let v_opt, _, _ = run_instrumented ~optimize:true sum_prog in
  let v_raw, _, _ = run_instrumented ~optimize:false sum_prog in
  Alcotest.(check int) "same answer" v_raw v_opt

(* --- dynamic deinstrumentation -------------------------------------------------- *)

let hot_loop =
  {|
int main(void) {
  int a[4];
  int i;
  int s = 0;
  a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
  for (i = 0; i < 1000; i++) s += a[i % 4];
  return s;
}
|}

let test_deinstrumentation_skips_hot_checks () =
  let v, stats, _ = run_instrumented ~deinstrument_after:50 hot_loop in
  Alcotest.(check int) "result preserved" 2500 v;
  Alcotest.(check bool) "checks skipped" true
    (stats.Kgcc.Kgcc_runtime.checks_skipped > 500);
  Alcotest.(check bool) "early checks still ran" true
    (stats.Kgcc.Kgcc_runtime.checks_executed > 0)

let test_deinstrumentation_off_by_default () =
  let _, stats, _ = run_instrumented hot_loop in
  Alcotest.(check int) "nothing skipped" 0 stats.Kgcc.Kgcc_runtime.checks_skipped

let test_deinstrumentation_reclaims_time () =
  let run deinstrument =
    let clock, interp = mk_interp () in
    let rt =
      Kgcc.Kgcc_runtime.create
        ?deinstrument_after:(if deinstrument then Some 50 else None)
        ~clock ~cost:Ksim.Cost_model.default ()
    in
    Kgcc.Kgcc_runtime.attach rt interp;
    let p = Minic.Parser.parse_program hot_loop in
    let r = Kgcc.Compile.compile p in
    ignore (Minic.Interp.load_program interp r.Kgcc.Compile.program);
    let t0 = Ksim.Sim_clock.now clock in
    ignore (Minic.Interp.run interp "main");
    Ksim.Sim_clock.now clock - t0
  in
  Alcotest.(check bool) "deinstrumented run cheaper" true (run true < run false)

let () =
  Alcotest.run "kgcc"
    [
      ( "splay",
        [
          Alcotest.test_case "basic" `Quick test_splay_basic;
          Alcotest.test_case "locality" `Quick test_splay_locality;
          QCheck_alcotest.to_alcotest qcheck_splay_vs_reference;
        ] );
      ("objmap", [ Alcotest.test_case "oob peers" `Quick test_objmap_oob_peers ]);
      ( "checks",
        [
          Alcotest.test_case "deref" `Quick test_check_deref;
          Alcotest.test_case "arith oob cycle" `Quick test_check_arith_oob_cycle;
          Alcotest.test_case "one past end" `Quick test_one_past_end_is_legal_edge;
          Alcotest.test_case "range" `Quick test_check_range;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "same result" `Quick test_instrumented_same_result;
          Alcotest.test_case "stack overflow caught" `Quick test_instrumented_catches_overflow;
          Alcotest.test_case "heap overflow caught" `Quick test_instrumented_catches_heap_overflow;
          Alcotest.test_case "use after free" `Quick test_instrumented_catches_use_after_free;
          Alcotest.test_case "strcpy checked" `Quick test_strcpy_checked;
          Alcotest.test_case "register locals skipped" `Quick test_register_locals_unchecked;
          Alcotest.test_case "code size growth" `Quick test_code_size_growth;
        ] );
      ( "check-cse",
        [
          Alcotest.test_case "removes repeats" `Quick test_cse_removes_repeated_checks;
          Alcotest.test_case "respects reassignment" `Quick test_cse_respects_reassignment;
          Alcotest.test_case "free invalidates" `Quick test_cse_invalidated_by_free;
          Alcotest.test_case "semantics preserved" `Quick test_cse_preserves_semantics;
        ] );
      ( "deinstrumentation",
        [
          Alcotest.test_case "skips hot checks" `Quick test_deinstrumentation_skips_hot_checks;
          Alcotest.test_case "off by default" `Quick test_deinstrumentation_off_by_default;
          Alcotest.test_case "reclaims time" `Quick test_deinstrumentation_reclaims_time;
        ] );
    ]
