(* Tests for the kring batched submission/completion ring: result
   equivalence with the synchronous dispatcher, backpressure, crossing
   arithmetic, and the watchdog. *)

module Syscall = Ksyscall.Syscall

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e

let mk_sys () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Ksyscall.Systable.create kernel)

let o_create = [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]

(* A mixed batch: successes interleaved with failing ops (ENOENT opens,
   EBADF closes), driving fds it opened itself. *)
let mixed_reqs =
  let open Syscall in
  [
    Mkdir { path = "/d" };
    Open { path = "/d/f"; flags = o_create };      (* fd 3 *)
    Write { fd = 3; data = Bytes.of_string "hello kring" };
    Lseek { fd = 3; off = 0; whence = Kvfs.Vfs.SEEK_SET };
    Read { fd = 3; len = 100 };
    Stat { path = "/d/f" };
    Open { path = "/missing"; flags = [ Kvfs.Vfs.O_RDONLY ] };  (* ENOENT *)
    Close { fd = 99 };                                          (* EBADF *)
    Fstat { fd = 3 };
    Fsync { fd = 3 };
    Readdirplus { path = "/d" };
    Getpid;
    Sendfile { fd = 3; off = 0; len = 5 };
    Close { fd = 3 };
    Open_write_close { path = "/d/g"; data = Bytes.of_string "x"; flags = o_create };
    Open_read_close { path = "/d/g"; maxlen = 10 };
    Readdir { path = "/d" };
    Rename { src = "/d/g"; dst = "/d/h" };
    Unlink { path = "/d/h" };
    Open_fstat { path = "/d/f"; flags = [ Kvfs.Vfs.O_RDONLY ] };
  ]

(* The two systems run on different virtual-time timelines (the sync
   path pays crossings the ring avoids), so [st_mtime] — cycles at last
   modification — legitimately differs.  Everything else must match. *)
let normalize_reply (r : Syscall.reply) : Syscall.reply =
  let zt (st : Kvfs.Vtypes.stat) = { st with Kvfs.Vtypes.st_mtime = 0 } in
  match r with
  | Ok (Syscall.R_stat st) -> Ok (Syscall.R_stat (zt st))
  | Ok (Syscall.R_dirents_stats es) ->
      Ok (Syscall.R_dirents_stats (List.map (fun (d, st) -> (d, zt st)) es))
  | Ok (Syscall.R_fd_stat { fd; stat }) ->
      Ok (Syscall.R_fd_stat { fd; stat = zt stat })
  | r -> r

let test_batch_matches_sequential () =
  (* twin systems: same ops synchronously on one, batched on the other *)
  let _, sys_sync = mk_sys () in
  let sync_replies =
    List.map (fun req -> Ksyscall.Usyscall.dispatch sys_sync req) mixed_reqs
  in
  let _, sys_ring = mk_sys () in
  let ring = Kring.create sys_ring in
  let completions = Kring.run_batch ring mixed_reqs in
  Alcotest.(check int) "every op completed" (List.length mixed_reqs)
    (List.length completions);
  List.iteri
    (fun i (req, (c : Kring.completion)) ->
      Alcotest.(check bool)
        (Fmt.str "op %d (%a): sysno" i Syscall.pp_req req)
        true
        (Ksyscall.Sysno.equal c.Kring.sysno (Syscall.sysno_of_req req));
      Alcotest.(check bool)
        (Fmt.str "op %d (%a): reply" i Syscall.pp_req req)
        true
        (normalize_reply c.Kring.reply
        = normalize_reply (List.nth sync_replies i)))
    (List.combine mixed_reqs completions);
  (* both systems saw every syscall in their tables *)
  Alcotest.(check int) "same syscall totals"
    (Ksyscall.Systable.total_syscalls sys_sync)
    (Ksyscall.Systable.total_syscalls sys_ring)

let test_sq_full_backpressure () =
  let _, sys = mk_sys () in
  let ring = Kring.create ~sq_entries:4 sys in
  for _ = 1 to 4 do
    match Kring.push ring Syscall.Getpid with
    | Ok _ -> ()
    | Error `Sq_full -> Alcotest.fail "premature Sq_full"
  done;
  (match Kring.push ring Syscall.Getpid with
  | Error `Sq_full -> ()
  | Ok _ -> Alcotest.fail "expected Sq_full at entry cap");
  (* draining frees the queue *)
  Alcotest.(check int) "drained" 4 (Kring.enter ring);
  (match Kring.push ring Syscall.Getpid with
  | Ok _ -> ()
  | Error `Sq_full -> Alcotest.fail "still full after drain");
  (* the backing store also backpressures: a request that cannot fit *)
  let tiny = Kring.create ~shared_size:16 sys in
  match
    Kring.push tiny (Syscall.Write { fd = 3; data = Bytes.make 64 'x' })
  with
  | Error `Sq_full -> ()
  | Ok _ -> Alcotest.fail "expected Sq_full from backing store"

let test_crossings_exactly_two () =
  let kernel, sys = mk_sys () in
  let c0 = Ksim.Kernel.crossings kernel in
  let ring = Kring.create sys in
  Alcotest.(check int) "setup is one crossing" 1
    (Ksim.Kernel.crossings kernel - c0);
  let n = 32 in
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  let c1 = Ksim.Kernel.crossings kernel in
  for i = 1 to n do
    match
      Kring.push ring
        (Syscall.Open_write_close
           {
             path = Printf.sprintf "/d/f%d" i;
             data = Bytes.of_string "v";
             flags = o_create;
           })
    with
    | Ok _ -> ()
    | Error `Sq_full -> Alcotest.fail "unexpected Sq_full"
  done;
  Alcotest.(check int) "pushes cross nothing" 0
    (Ksim.Kernel.crossings kernel - c1);
  Alcotest.(check int) "all completed" n (Kring.enter ring);
  Alcotest.(check int) "batch-of-N drains in one crossing" 1
    (Ksim.Kernel.crossings kernel - c1);
  Alcotest.(check int) "reaping crosses nothing" n
    (List.length (Kring.reap_all ring));
  (* setup + enter = exactly 2 crossings for the whole batch *)
  Alcotest.(check int) "total: setup + enter" 2
    (Ksim.Kernel.crossings kernel - c0 - 1 (* the mkdir *))

let test_crossings_savings_vs_sync () =
  (* the acceptance shape: 64 file ops, ring batch 32 vs synchronous *)
  let reqs =
    Syscall.Mkdir { path = "/w" }
    :: List.init 63 (fun i ->
           Syscall.Open_write_close
             {
               path = Printf.sprintf "/w/f%d" (i + 1);
               data = Bytes.of_string (string_of_int i);
               flags = o_create;
             })
  in
  let readback sys =
    List.map
      (fun (d : Kvfs.Vtypes.dirent) ->
        ( d.Kvfs.Vtypes.d_name,
          Bytes.to_string
            (ok
               (Ksyscall.Usyscall.sys_open_read_close sys
                  ~path:("/w/" ^ d.Kvfs.Vtypes.d_name) ~maxlen:100)) ))
      (ok (Ksyscall.Usyscall.sys_readdir sys ~path:"/w"))
    |> List.sort compare
  in
  let kernel_s, sys_s = mk_sys () in
  let c0 = Ksim.Kernel.crossings kernel_s in
  List.iter (fun r -> ignore (Ksyscall.Usyscall.dispatch sys_s r)) reqs;
  let sync_crossings = Ksim.Kernel.crossings kernel_s - c0 in
  let kernel_r, sys_r = mk_sys () in
  let c0 = Ksim.Kernel.crossings kernel_r in
  (* batch size 32: the 64 ops drain in two enters plus the setup *)
  let ring = Kring.create ~sq_entries:32 sys_r in
  let completions = Kring.run_batch ring reqs in
  let ring_crossings = Ksim.Kernel.crossings kernel_r - c0 in
  Alcotest.(check int) "all ops completed" (List.length reqs)
    (List.length completions);
  Alcotest.(check (list (pair string string)))
    "byte-identical files" (readback sys_s) (readback sys_r);
  Alcotest.(check bool)
    (Printf.sprintf "ring >= 10x fewer crossings (%d vs %d)" sync_crossings
       ring_crossings)
    true
    (sync_crossings >= 10 * ring_crossings)

let test_watchdog_preempts_batch () =
  let kernel, sys = mk_sys () in
  let policy =
    {
      Cosy.Cosy_safety.mode = Cosy.Cosy_safety.Data_segment;
      watchdog_budget = 1;      (* pathological: nothing fits the budget *)
      trust_after = None;
    }
  in
  let ring = Kring.create ~policy sys in
  for i = 1 to 8 do
    match
      Kring.push ring
        (Syscall.Open_write_close
           {
             path = Printf.sprintf "/f%d" i;
             data = Bytes.make 4096 'x';
             flags = o_create;
           })
    with
    | Ok _ -> ()
    | Error `Sq_full -> Alcotest.fail "unexpected Sq_full"
  done;
  (try
     ignore (Kring.enter ring);
     Alcotest.fail "expected watchdog kill"
   with Cosy.Cosy_safety.Watchdog_expired { used; budget } ->
     Alcotest.(check bool) "used > budget" true (used > budget));
  Alcotest.(check bool) "mode restored" true
    (Ksim.Kernel.mode kernel = Ksim.Kernel.User);
  (* completions produced before the kill survive for reaping *)
  Alcotest.(check bool) "partial completions survive" true
    (Kring.cq_depth ring >= 1);
  Alcotest.(check bool) "not everything completed" true
    (Kring.cq_depth ring < 8)

let test_empty_enter_is_free () =
  let kernel, sys = mk_sys () in
  let ring = Kring.create sys in
  let c0 = Ksim.Kernel.crossings kernel in
  Alcotest.(check int) "no completions" 0 (Kring.enter ring);
  Alcotest.(check int) "no crossing" 0 (Ksim.Kernel.crossings kernel - c0);
  Alcotest.(check bool) "nothing to reap" true (Kring.reap ring = None)

let () =
  Alcotest.run "kring"
    [
      ( "ring",
        [
          Alcotest.test_case "batch == sequential" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "sq-full backpressure" `Quick
            test_sq_full_backpressure;
          Alcotest.test_case "batch-of-N is 2 crossings" `Quick
            test_crossings_exactly_two;
          Alcotest.test_case "10x fewer crossings vs sync" `Quick
            test_crossings_savings_vs_sync;
          Alcotest.test_case "watchdog preempts batch" `Quick
            test_watchdog_preempts_batch;
          Alcotest.test_case "empty enter is free" `Quick
            test_empty_enter_is_free;
        ] );
    ]
