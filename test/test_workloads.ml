(* Workload-level tests: determinism, plain/Cosy equivalence, and the
   directional claims behind each experiment (small configurations so
   the suite stays fast; the full-size runs live in bench/). *)

let pm_small =
  { Workloads.Postmark.default_config with files = 40; transactions = 120 }

let am_small =
  { Workloads.Amutils.default_config with source_files = 30 }

(* full clean build (creates files while timed): the Kefence testbed *)
let am_small_full = { am_small with Workloads.Amutils.prime_objects = false }

let db_small =
  { Workloads.Database.default_config with records = 100; lookups = 200; scans = 1 }

let ws_small =
  { Workloads.Webserver.default_config with documents = 10; requests = 50; doc_size = 4096 }

let test_postmark_runs_and_balances () =
  let t = Core.boot_with Core.Config.default in
  let s = Workloads.Postmark.run ~config:pm_small (Core.sys t) in
  Alcotest.(check bool) "created >= files" true
    (s.Workloads.Postmark.created >= pm_small.Workloads.Postmark.files);
  (* every created file was eventually deleted *)
  Alcotest.(check int) "created = deleted" s.Workloads.Postmark.created
    s.Workloads.Postmark.deleted;
  Alcotest.(check bool) "did transactions" true
    (s.Workloads.Postmark.read + s.Workloads.Postmark.appended > 0);
  Alcotest.(check bool) "time advanced" true
    (s.Workloads.Postmark.times.Ksim.Kernel.elapsed > 0)

let test_postmark_deterministic () =
  let run () =
    let t = Core.boot_with Core.Config.default in
    let s = Workloads.Postmark.run ~config:pm_small (Core.sys t) in
    (s.Workloads.Postmark.created, s.Workloads.Postmark.data_written,
     s.Workloads.Postmark.times.Ksim.Kernel.elapsed)
  in
  Alcotest.(check bool) "bit-for-bit repeatable" true (run () = run ())

let test_amutils_user_dominated () =
  let t = Core.boot_with Core.Config.default in
  Workloads.Amutils.setup ~config:am_small (Core.sys t);
  let s = Workloads.Amutils.run ~config:am_small (Core.sys t) in
  Alcotest.(check int) "all compiled" 30 s.Workloads.Amutils.compiled;
  (* a compile workload burns more user time than system time *)
  Alcotest.(check bool) "user > system" true
    (s.Workloads.Amutils.times.Ksim.Kernel.utime
     > s.Workloads.Amutils.times.Ksim.Kernel.stime)

let test_database_plain_vs_cosy_same_io () =
  let t1 = Core.boot_with Core.Config.default in
  Workloads.Database.setup ~config:db_small (Core.sys t1);
  let p = Workloads.Database.run_plain ~config:db_small (Core.sys t1) in
  let t2 = Core.boot_with Core.Config.default in
  Workloads.Database.setup ~config:db_small (Core.sys t2);
  let c, cosy_stats = Workloads.Database.run_cosy ~config:db_small (Core.sys t2) in
  Alcotest.(check int) "same reads" p.Workloads.Database.reads c.Workloads.Database.reads;
  Alcotest.(check int) "same writes" p.Workloads.Database.writes c.Workloads.Database.writes;
  Alcotest.(check int) "one compound submitted" 1 cosy_stats.Cosy.Cosy_exec.submits;
  (* E4's direction: Cosy is faster *)
  Alcotest.(check bool) "cosy faster" true
    (c.Workloads.Database.times.Ksim.Kernel.elapsed
     < p.Workloads.Database.times.Ksim.Kernel.elapsed)

let test_webserver_plain_vs_cosy () =
  let t1 = Core.boot_with Core.Config.default in
  Workloads.Webserver.setup ~config:ws_small (Core.sys t1);
  let p = Workloads.Webserver.run_plain ~config:ws_small (Core.sys t1) in
  let t2 = Core.boot_with Core.Config.default in
  Workloads.Webserver.setup ~config:ws_small (Core.sys t2);
  let c, _ = Workloads.Webserver.run_cosy ~config:ws_small (Core.sys t2) in
  Alcotest.(check int) "same bytes served" p.Workloads.Webserver.bytes_served
    c.Workloads.Webserver.bytes_served;
  Alcotest.(check bool) "cosy faster" true
    (c.Workloads.Webserver.times.Ksim.Kernel.elapsed
     < p.Workloads.Webserver.times.Ksim.Kernel.elapsed)

let test_webserver_sendfile () =
  let t1 = Core.boot_with Core.Config.default in
  Workloads.Webserver.setup ~config:ws_small (Core.sys t1);
  let p = Workloads.Webserver.run_plain ~config:ws_small (Core.sys t1) in
  let t2 = Core.boot_with Core.Config.default in
  Workloads.Webserver.setup ~config:ws_small (Core.sys t2);
  let sf = Workloads.Webserver.run_sendfile ~config:ws_small (Core.sys t2) in
  Alcotest.(check int) "same bytes" p.Workloads.Webserver.bytes_served
    sf.Workloads.Webserver.bytes_served;
  Alcotest.(check bool) "sendfile faster" true
    (sf.Workloads.Webserver.times.Ksim.Kernel.elapsed
     < p.Workloads.Webserver.times.Ksim.Kernel.elapsed)

let test_lsdir_equivalence_and_direction () =
  let t1 = Core.boot_with Core.Config.default in
  Workloads.Lsdir.setup (Core.sys t1) ~dir:"/d" ~n:100;
  let p = Workloads.Lsdir.run_plain (Core.sys t1) ~dir:"/d" in
  let t2 = Core.boot_with Core.Config.default in
  Workloads.Lsdir.setup (Core.sys t2) ~dir:"/d" ~n:100;
  let r = Workloads.Lsdir.run_readdirplus (Core.sys t2) ~dir:"/d" in
  Alcotest.(check int) "same entries" p.Workloads.Lsdir.entries r.Workloads.Lsdir.entries;
  Alcotest.(check int) "plain: 1 + n syscalls" 101 p.Workloads.Lsdir.syscalls;
  Alcotest.(check int) "merged: 1 syscall" 1 r.Workloads.Lsdir.syscalls;
  Alcotest.(check bool) "E1 direction" true
    (r.Workloads.Lsdir.times.Ksim.Kernel.elapsed
     < p.Workloads.Lsdir.times.Ksim.Kernel.elapsed)

let test_interactive_trace_mines_patterns () =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  Workloads.Interactive.setup sys;
  let rec_ = Core.trace t in
  let cfg = { Workloads.Interactive.default_config with duration_events = 60 } in
  let s = Workloads.Interactive.run ~config:cfg sys in
  Alcotest.(check bool) "syscalls happened" true (s.Workloads.Interactive.syscalls > 50);
  (* the trace contains readdirplus opportunities *)
  let runs = Ktrace.Patterns.readdir_stat_runs rec_ ~min_stats:2 in
  Alcotest.(check bool) "readdir-stat runs found" true (List.length runs > 0);
  let est = Ktrace.Savings.estimate ~trace_duration_cycles:s.Workloads.Interactive.duration_cycles rec_ in
  Alcotest.(check bool) "E2 direction: fewer syscalls" true
    (est.Ktrace.Savings.syscalls_after < est.Ktrace.Savings.syscalls_before);
  Alcotest.(check bool) "E2 direction: fewer bytes" true
    (est.Ktrace.Savings.bytes_after < est.Ktrace.Savings.bytes_before)

let test_kefence_overhead_small () =
  (* E5's direction: instrumented wrapfs is slower, but only slightly *)
  let t1 = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kmalloc } in
  Workloads.Amutils.setup ~config:am_small_full (Core.sys t1);
  let a = Workloads.Amutils.run ~config:am_small_full (Core.sys t1) in
  let t2 = Core.boot_with { Core.Config.default with fs = Core.Wrapfs_kefence Kefence.Crash } in
  Workloads.Amutils.setup ~config:am_small_full (Core.sys t2);
  let b = Workloads.Amutils.run ~config:am_small_full (Core.sys t2) in
  let ratio =
    float_of_int b.Workloads.Amutils.times.Ksim.Kernel.elapsed
    /. float_of_int a.Workloads.Amutils.times.Ksim.Kernel.elapsed
  in
  Alcotest.(check bool) "kefence costs something" true (ratio > 1.0);
  Alcotest.(check bool) "kefence under 10%" true (ratio < 1.10);
  match Core.kefence t2 with
  | Some kf -> Alcotest.(check int) "no overflow reports" 0 (Kefence.overflows_detected kf)
  | None -> Alcotest.fail "kefence missing"

let test_kgcc_journalfs_overhead_direction () =
  (* E7's direction at test scale: KGCC costs system time, and PostMark
     suffers far more than the compile workload *)
  let pm fs =
    let t = Core.boot_with { Core.Config.default with fs } in
    (Workloads.Postmark.run ~config:pm_small (Core.sys t)).Workloads.Postmark.times
  in
  let am fs =
    let t = Core.boot_with { Core.Config.default with fs } in
    Workloads.Amutils.setup ~config:am_small (Core.sys t);
    (Workloads.Amutils.run ~config:am_small (Core.sys t)).Workloads.Amutils.times
  in
  let pm_gcc = pm Core.Journalfs and pm_kgcc = pm Core.Journalfs_kgcc in
  let am_gcc = am Core.Journalfs and am_kgcc = am Core.Journalfs_kgcc in
  let ratio a b = float_of_int b /. float_of_int (max 1 a) in
  let pm_ratio = ratio pm_gcc.Ksim.Kernel.stime pm_kgcc.Ksim.Kernel.stime in
  let am_ratio = ratio am_gcc.Ksim.Kernel.stime am_kgcc.Ksim.Kernel.stime in
  Alcotest.(check bool) "postmark blows up" true (pm_ratio > 3.0);
  Alcotest.(check bool) "amutils modest" true (am_ratio < 2.0);
  Alcotest.(check bool) "contrast" true (pm_ratio > am_ratio)

let test_monitoring_overhead_ordering () =
  (* E6's ordering: plain < dispatcher+ring < polling logger < disk logger *)
  let cfg = { pm_small with transactions = 150 } in
  let base =
    let t = Core.boot_with Core.Config.default in
    (Workloads.Postmark.run ~config:cfg (Core.sys t)).Workloads.Postmark.times.Ksim.Kernel.elapsed
  in
  let ring =
    let t = Core.boot_with Core.Config.default in
    ignore (Core.enable_monitoring t);
    let e = (Workloads.Postmark.run ~config:cfg (Core.sys t)).Workloads.Postmark.times.Ksim.Kernel.elapsed in
    Core.disable_monitoring t;
    e
  in
  let logger write_to_disk =
    let t = Core.boot_with Core.Config.default in
    let d = Core.enable_monitoring t in
    let cd = Kmonitor.Chardev.create (Core.kernel t) d in
    let lib = Kmonitor.Libkernevents.create cd in
    let lg = Kmonitor.Disk_logger.create ~write_to_disk (Core.kernel t) lib in
    let cfg = { cfg with Workloads.Postmark.pump = (fun () -> Kmonitor.Disk_logger.pump lg) } in
    let e = (Workloads.Postmark.run ~config:cfg (Core.sys t)).Workloads.Postmark.times.Ksim.Kernel.elapsed in
    Core.disable_monitoring t;
    e
  in
  let nodisk = logger false in
  let disk = logger true in
  Alcotest.(check bool) "ring adds overhead" true (ring > base);
  Alcotest.(check bool) "polling logger adds more" true (nodisk > ring);
  Alcotest.(check bool) "disk logger most" true (disk > nodisk)

let test_watchdog_protects_runaway_compound () =
  (* a hostile compound cannot hang the simulated kernel *)
  let t = Core.boot_with Core.Config.default in
  let exec =
    Core.cosy
      ~policy:
        {
          Cosy.Cosy_safety.mode = Cosy.Cosy_safety.Data_segment;
          watchdog_budget = 2_000_000;
          trust_after = None;
        }
      t
  in
  let c = Cosy.Cosy_lib.create () in
  let top = Cosy.Cosy_lib.next_index c in
  ignore (Cosy.Cosy_lib.syscall c "getpid" []);
  Cosy.Cosy_lib.jmp c top;
  try
    ignore (Cosy.Cosy_exec.submit exec (Cosy.Cosy_lib.finish c));
    Alcotest.fail "expected watchdog"
  with Cosy.Cosy_safety.Watchdog_expired _ ->
    Alcotest.(check bool) "kernel usable afterwards" true
      (Core.Syscall.sys_getpid (Core.sys t) >= 0)

(* --- knet serving (E14) ------------------------------------------------- *)

let net_small variant =
  { Workloads.Webserver.net_default_config with
    Workloads.Webserver.variant; conns = 24; requests_per_conn = 2 }

let net_run variant =
  let t = Core.boot_with Core.Config.default in
  let config = net_small variant in
  Workloads.Webserver.net_setup ~config (Core.sys t);
  let k = Core.kernel t in
  let x0 = Ksim.Kernel.crossings k in
  let c0 = Ksim.Kernel.bytes_to_user k + Ksim.Kernel.bytes_from_user k in
  let s = Workloads.Webserver.run_net ~config (Core.sys t) in
  ( s,
    Ksim.Kernel.crossings k - x0,
    Ksim.Kernel.bytes_to_user k + Ksim.Kernel.bytes_from_user k - c0 )

let test_net_variants_equivalent () =
  (* E14's core claim: all four serving loops deliver byte-identical
     response streams, and the consolidated/sendfile/ring variants pay
     for them with fewer crossings or fewer copied bytes *)
  let naive, nx, ncopy = net_run Workloads.Webserver.Net_naive in
  let cons, cx, _ = net_run Workloads.Webserver.Net_consolidated in
  let sf, _, sfcopy = net_run Workloads.Webserver.Net_sendfile in
  let ring, rx, rcopy = net_run Workloads.Webserver.Net_ring in
  Alcotest.(check int) "all conns completed" 24 naive.Workloads.Webserver.n_completed;
  List.iter
    (fun (name, s) ->
      Alcotest.(check string) (name ^ ": same bytes on the wire")
        naive.Workloads.Webserver.n_digest s.Workloads.Webserver.n_digest;
      Alcotest.(check int) (name ^ ": same completions")
        naive.Workloads.Webserver.n_completed s.Workloads.Webserver.n_completed)
    [ ("consolidated", cons); ("sendfile", sf); ("ring", ring) ];
  Alcotest.(check bool) "consolidated crosses less" true (cx < nx);
  Alcotest.(check bool) "ring crosses least" true (rx < cx);
  Alcotest.(check bool) "sendfile copies less" true (sfcopy < ncopy);
  Alcotest.(check bool) "ring copies less" true (rcopy < ncopy)

let test_net_smp_completes () =
  let t = Core.boot_with { Core.Config.default with ncpus = Some 2 } in
  let config =
    { (net_small Workloads.Webserver.Net_sendfile) with
      Workloads.Webserver.conns = 12 }
  in
  let insts = Workloads.Smp.webserver_net_instances ~config (Core.sys t) 2 in
  let r = Workloads.Smp.run (Core.sys t) insts in
  Alcotest.(check int) "two instances" 2 r.Workloads.Smp.instances;
  Array.iter
    (fun c -> Alcotest.(check bool) "every cpu worked" true (c > 0))
    r.Workloads.Smp.cpu_cycles;
  let knet = Core.net t in
  for i = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "port %d clients all served" (80 + i))
      12
      (Knet.Traffic.completed knet ~port:(80 + i))
  done

let smp_cfg =
  { Workloads.Webserver.default_config with
    documents = 20;
    requests = 40;
    doc_size = 4_096;
    doc_size_spread = 2_048 }

let smp_run ~ncpus ~shards =
  let t = Core.boot_with { Core.Config.default with ncpus = Some ncpus; dcache_shards = Some shards } in
  let insts = Workloads.Smp.webserver_instances ~config:smp_cfg (Core.sys t) ncpus in
  Workloads.Smp.run (Core.sys t) insts

let test_smp_driver_completes () =
  let r = smp_run ~ncpus:4 ~shards:1 in
  Alcotest.(check int) "all requests served" (4 * 40) r.Workloads.Smp.steps;
  Alcotest.(check int) "one instance per cpu" 4 r.Workloads.Smp.instances;
  Array.iter
    (fun c -> Alcotest.(check bool) "every cpu worked" true (c > 0))
    r.Workloads.Smp.cpu_cycles;
  Alcotest.(check bool) "makespan is busiest cpu" true
    (r.Workloads.Smp.makespan = Array.fold_left max 0 r.Workloads.Smp.cpu_cycles)

let test_smp_contention_profile () =
  (* global lock under SMP contends; one CPU or sharding does not *)
  let multi = smp_run ~ncpus:4 ~shards:1 in
  Alcotest.(check bool) "global lock contended" true (multi.Workloads.Smp.contended > 0);
  Alcotest.(check bool) "spin cycles charged" true (multi.Workloads.Smp.spin_cycles > 0);
  let single = smp_run ~ncpus:1 ~shards:1 in
  Alcotest.(check int) "no remote holder at 1 cpu" 0 single.Workloads.Smp.contended;
  let sharded = smp_run ~ncpus:4 ~shards:64 in
  Alcotest.(check int) "sharded reads lockless" 0 sharded.Workloads.Smp.contended;
  Alcotest.(check bool) "sharding beats the global lock" true
    (sharded.Workloads.Smp.makespan < multi.Workloads.Smp.makespan)

let test_smp_postmark_contends () =
  let cfg = { pm_small with Workloads.Postmark.transactions = 200 } in
  let t = Core.boot_with { Core.Config.default with ncpus = Some 4; dcache_shards = Some 1 } in
  let insts = Workloads.Smp.postmark_instances ~config:cfg (Core.sys t) 4 in
  let r = Workloads.Smp.run (Core.sys t) insts in
  Alcotest.(check bool) "postmark contends the global dcache_lock" true
    (r.Workloads.Smp.contended > 0)

let test_smp_deterministic () =
  let a = smp_run ~ncpus:4 ~shards:1 in
  let b = smp_run ~ncpus:4 ~shards:1 in
  Alcotest.(check int) "same makespan" a.Workloads.Smp.makespan b.Workloads.Smp.makespan;
  Alcotest.(check int) "same contention" a.Workloads.Smp.contended b.Workloads.Smp.contended

let () =
  Alcotest.run "workloads"
    [
      ( "postmark",
        [
          Alcotest.test_case "runs+balances" `Quick test_postmark_runs_and_balances;
          Alcotest.test_case "deterministic" `Quick test_postmark_deterministic;
        ] );
      ("amutils", [ Alcotest.test_case "user dominated" `Quick test_amutils_user_dominated ]);
      ( "cosy-apps",
        [
          Alcotest.test_case "database equivalence" `Quick test_database_plain_vs_cosy_same_io;
          Alcotest.test_case "webserver" `Quick test_webserver_plain_vs_cosy;
          Alcotest.test_case "webserver sendfile" `Quick test_webserver_sendfile;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E1 lsdir" `Quick test_lsdir_equivalence_and_direction;
          Alcotest.test_case "E2 interactive" `Quick test_interactive_trace_mines_patterns;
          Alcotest.test_case "E5 kefence overhead" `Quick test_kefence_overhead_small;
          Alcotest.test_case "E7 kgcc contrast" `Quick test_kgcc_journalfs_overhead_direction;
          Alcotest.test_case "E6 monitoring order" `Quick test_monitoring_overhead_ordering;
          Alcotest.test_case "watchdog" `Quick test_watchdog_protects_runaway_compound;
        ] );
      ( "knet",
        [
          Alcotest.test_case "E14 variants equivalent" `Quick test_net_variants_equivalent;
          Alcotest.test_case "E14 smp completes" `Quick test_net_smp_completes;
        ] );
      ( "smp",
        [
          Alcotest.test_case "driver completes" `Quick test_smp_driver_completes;
          Alcotest.test_case "contention profile" `Quick test_smp_contention_profile;
          Alcotest.test_case "postmark contends" `Quick test_smp_postmark_contends;
          Alcotest.test_case "deterministic" `Quick test_smp_deterministic;
        ] );
    ]
