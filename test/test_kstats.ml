(* Tests for the kernel-wide metrics registry: log₂ bucket geometry,
   percentiles, merging, registration semantics, the disabled hot path,
   and — the property everything else leans on — cycle neutrality:
   enabling kstats must not change a single simulated cycle. *)

(* --- bucket geometry ----------------------------------------------------- *)

let test_bucket_boundaries () =
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket of %d" v) b
        (Kstats.bucket_of_value v))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (1025, 10); (65535, 15); (65536, 16);
    ];
  Alcotest.(check (pair int int)) "bucket 0 holds 0..1" (0, 1)
    (Kstats.bucket_bounds 0);
  Alcotest.(check (pair int int)) "bucket 1 holds 2..3" (2, 3)
    (Kstats.bucket_bounds 1);
  Alcotest.(check (pair int int)) "bucket 10 holds 1024..2047" (1024, 2047)
    (Kstats.bucket_bounds 10);
  (* every value lands inside its own bucket's bounds *)
  List.iter
    (fun v ->
      let lo, hi = Kstats.bucket_bounds (Kstats.bucket_of_value v) in
      Alcotest.(check bool) (Printf.sprintf "%d within [%d,%d]" v lo hi) true
        (lo <= v && v <= hi))
    [ 0; 1; 2; 3; 5; 100; 1000; 123_456; 1_000_000_000 ]

let test_percentiles () =
  let t = Kstats.create ~enabled:true () in
  let h = Kstats.histogram t "h" in
  Alcotest.(check int) "empty p50" 0 (Kstats.percentile h 50.);
  Kstats.observe t h 100;
  (* a single sample: every percentile clamps to it exactly *)
  Alcotest.(check int) "single p50" 100 (Kstats.percentile h 50.);
  Alcotest.(check int) "single p99" 100 (Kstats.percentile h 99.);
  for v = 1 to 1000 do
    Kstats.observe t h v
  done;
  let p50 = Kstats.percentile h 50. and p99 = Kstats.percentile h 99. in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  (* bucket upper bounds: the true p50 of 1..1000 is ~500, whose bucket
     tops out at 511; p99 lands in 512..1023 *)
  Alcotest.(check bool) "p50 plausible" true (p50 >= 255 && p50 <= 1023);
  Alcotest.(check bool) "p99 plausible" true (p99 >= 511 && p99 <= 1000);
  Alcotest.(check int) "count" 1001 (Kstats.hist_count h);
  (* the view agrees, and its nonzero buckets account for every sample *)
  match Kstats.find t "h" with
  | Some (Kstats.Hist_v v) ->
      Alcotest.(check int) "view p50" p50 v.Kstats.v_p50;
      Alcotest.(check int) "view buckets cover count" 1001
        (List.fold_left (fun acc (_, _, n) -> acc + n) 0 v.Kstats.v_buckets)
  | _ -> Alcotest.fail "histogram view missing"

let test_merge () =
  let a = Kstats.create ~enabled:true () in
  let b = Kstats.create ~enabled:true () in
  let ca = Kstats.counter a "c" and cb = Kstats.counter b "c" in
  let ga = Kstats.gauge a "g" and gb = Kstats.gauge b "g" in
  let ha = Kstats.histogram a "h" and hb = Kstats.histogram b "h" in
  Kstats.add a ca 10;
  Kstats.add b cb 32;
  Kstats.set a ga 5;
  Kstats.set a ga 2;   (* peak 5, level 2 *)
  Kstats.set b gb 3;
  Kstats.observe a ha 10;
  Kstats.observe b hb 1000;
  let m = Kstats.merge_hist ha hb in
  Alcotest.(check int) "merged count" 2 (Kstats.hist_count m);
  Alcotest.(check int) "merged sum" 1010 (Kstats.hist_sum m);
  Alcotest.(check int) "inputs unchanged" 1 (Kstats.hist_count ha);
  let agg = Kstats.create ~enabled:true () in
  Kstats.merge_into ~into:agg a;
  Kstats.merge_into ~into:agg b;
  (match Kstats.find agg "c" with
  | Some (Kstats.Counter_v v) -> Alcotest.(check int) "counters add" 42 v
  | _ -> Alcotest.fail "counter missing");
  (match Kstats.find agg "g" with
  | Some (Kstats.Gauge_v { max; _ }) ->
      Alcotest.(check int) "gauge keeps peak" 5 max
  | _ -> Alcotest.fail "gauge missing");
  match Kstats.find agg "h" with
  | Some (Kstats.Hist_v v) ->
      Alcotest.(check int) "hists merge" 2 v.Kstats.v_count;
      Alcotest.(check int) "merged min" 10 v.Kstats.v_min;
      Alcotest.(check int) "merged max" 1000 v.Kstats.v_max
  | _ -> Alcotest.fail "hist missing"

(* --- registration semantics ---------------------------------------------- *)

let test_registration () =
  let t = Kstats.create ~enabled:true () in
  let c1 = Kstats.counter t "x" in
  let c2 = Kstats.counter t "x" in
  Kstats.incr t c1;
  Kstats.incr t c2;
  Alcotest.(check int) "same handle" 2 (Kstats.counter_value c1);
  Alcotest.check_raises "type clash" (Kstats.Type_clash "x") (fun () ->
      ignore (Kstats.gauge t "x"));
  Alcotest.(check (list string)) "registration order" [ "x" ] (Kstats.names t)

let test_disabled_noop () =
  let t = Kstats.create () in
  Alcotest.(check bool) "disabled by default" false (Kstats.is_enabled t);
  let c = Kstats.counter t "c" in
  let h = Kstats.histogram t "h" in
  Kstats.incr t c;
  Kstats.observe t h 99;
  Alcotest.(check int) "counter untouched" 0 (Kstats.counter_value c);
  Alcotest.(check int) "hist untouched" 0 (Kstats.hist_count h);
  Kstats.set_enabled t true;
  Kstats.incr t c;
  Alcotest.(check int) "records once enabled" 1 (Kstats.counter_value c)

let test_json () =
  let t = Kstats.create ~enabled:true () in
  let c = Kstats.counter t "a.count" in
  let h = Kstats.histogram t "a.lat" in
  Kstats.add t c 3;
  Kstats.observe t h 7;
  let j = Kstats.to_json t in
  Alcotest.(check bool) "object" true
    (String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}');
  Alcotest.(check bool) "has counter" true
    (let sub = {|"a.count":{"type":"counter","value":3}|} in
     let rec find i =
       i + String.length sub <= String.length j
       && (String.sub j i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\n"
    (Kstats.json_escape "a\"b\\c\n")

(* --- cycle neutrality ----------------------------------------------------- *)

(* The load-bearing property: a kernel with metrics enabled executes the
   exact same simulated-cycle trajectory as one with them disabled.
   Run an identical syscall workload on both and compare clocks. *)
let run_workload t =
  let sys = Core.sys t in
  for i = 0 to 19 do
    let path = Printf.sprintf "/f%d" i in
    let fd = Core.ok (Core.Syscall.sys_open sys ~path ~flags:Core.o_create) in
    ignore
      (Core.ok (Core.Syscall.sys_write sys ~fd ~data:(Bytes.make 100 'x')));
    ignore (Core.ok (Core.Syscall.sys_fstat sys ~fd));
    Core.ok (Core.Syscall.sys_close sys ~fd);
    ignore (Core.ok (Core.Syscall.sys_stat sys ~path))
  done;
  ignore (Core.ok (Core.Syscall.sys_readdir sys ~path:"/"));
  Ksim.Kernel.now (Core.kernel t)

let test_cycle_neutral () =
  let saved = !Kstats.default_enabled in
  Kstats.default_enabled := false;
  let off = run_workload (Core.boot_with Core.Config.default) in
  Kstats.default_enabled := true;
  let t_on = Core.boot_with Core.Config.default in
  let on = run_workload t_on in
  Kstats.default_enabled := saved;
  Alcotest.(check int) "identical cycle trajectory" off on;
  (* and the enabled run really did record *)
  match Kstats.find (Core.stats t_on) "syscall.total" with
  | Some (Kstats.Counter_v v) ->
      Alcotest.(check bool) "metrics recorded" true (v > 0)
  | _ -> Alcotest.fail "syscall.total missing"

let () =
  Alcotest.run "kstats"
    [
      ( "buckets",
        [
          Alcotest.test_case "boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "registry",
        [
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "registration" `Quick test_registration;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "json" `Quick test_json;
        ] );
      ( "neutrality",
        [ Alcotest.test_case "cycle neutral" `Quick test_cycle_neutral ] );
    ]
