(* Tests for trace recording, the syscall graph, pattern mining, and the
   savings estimator. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e

let mk_traced () =
  let kernel = Ksim.Kernel.create () in
  let sys = Ksyscall.Systable.create kernel in
  let rec_ = Ktrace.Recorder.create () in
  Ktrace.Recorder.attach rec_ sys;
  (kernel, sys, rec_)

let do_ls sys dir =
  let entries = ok (Ksyscall.Usyscall.sys_readdir sys ~path:dir) in
  List.iter
    (fun d -> ignore (ok (Ksyscall.Usyscall.sys_stat sys ~path:(dir ^ "/" ^ d.Kvfs.Vtypes.d_name))))
    entries

let populate sys dir n =
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:dir));
  for i = 0 to n - 1 do
    ignore
      (ok
         (Ksyscall.Usyscall.sys_open_write_close sys
            ~path:(Printf.sprintf "%s/f%d" dir i)
            ~data:(Bytes.make 8 'x')
            ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done

let test_recorder () =
  let _, sys, rec_ = mk_traced () in
  ignore (Ksyscall.Usyscall.sys_getpid sys);
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  Alcotest.(check int) "two records" 2 (Ktrace.Recorder.count rec_);
  let records = Ktrace.Recorder.records rec_ in
  Alcotest.(check (list string)) "order preserved" [ "getpid"; "mkdir" ]
    (List.map
       (fun r -> Ksyscall.Sysno.to_string r.Ksyscall.Systable.sysno)
       records);
  Alcotest.(check bool) "timestamps monotone" true
    (match records with
    | [ a; b ] -> a.Ksyscall.Systable.timestamp <= b.Ksyscall.Systable.timestamp
    | _ -> false);
  Ktrace.Recorder.clear rec_;
  Alcotest.(check int) "cleared" 0 (Ktrace.Recorder.count rec_)

let test_graph () =
  let _, sys, rec_ = mk_traced () in
  populate sys "/d" 3;
  Ktrace.Recorder.clear rec_;
  do_ls sys "/d";
  let g = Ktrace.Syscall_graph.of_recorder rec_ in
  Alcotest.(check int) "readdir->stat edge" 1
    (Ktrace.Syscall_graph.weight g ~src:Ksyscall.Sysno.Readdir
       ~dst:Ksyscall.Sysno.Stat);
  Alcotest.(check int) "stat->stat edges" 2
    (Ktrace.Syscall_graph.weight g ~src:Ksyscall.Sysno.Stat
       ~dst:Ksyscall.Sysno.Stat);
  Alcotest.(check int) "stat invocations" 3
    (Ktrace.Syscall_graph.invocations g Ksyscall.Sysno.Stat);
  (* heavy paths surface the readdir-stat chain *)
  let paths = Ktrace.Syscall_graph.heavy_paths g ~length:2 ~top:5 in
  Alcotest.(check bool) "stat-stat is a heavy path" true
    (List.exists
       (fun (p, _) -> p = [ Ksyscall.Sysno.Stat; Ksyscall.Sysno.Stat ])
       paths)

let test_patterns () =
  let _, sys, rec_ = mk_traced () in
  populate sys "/d" 4;
  Ktrace.Recorder.clear rec_;
  (* three open-read-close editor rounds *)
  for _ = 1 to 3 do
    let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/d/f0" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
    ignore (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:100));
    ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))
  done;
  do_ls sys "/d";
  let mined = Ktrace.Patterns.mine rec_ in
  Alcotest.(check int) "open-read-close count" 3
    (Ktrace.Patterns.count mined
       [ Ksyscall.Sysno.Open; Ksyscall.Sysno.Read; Ksyscall.Sysno.Close ]);
  let runs = Ktrace.Patterns.readdir_stat_runs rec_ ~min_stats:2 in
  Alcotest.(check (list int)) "one readdir followed by 4 stats" [ 4 ] runs;
  (* top patterns include the triple *)
  let top = Ktrace.Patterns.top mined ~n:50 in
  Alcotest.(check bool) "orc in top" true
    (List.exists
       (fun (p, _) ->
         p = [ Ksyscall.Sysno.Open; Ksyscall.Sysno.Read; Ksyscall.Sysno.Close ])
       top)

let test_savings () =
  let _, sys, rec_ = mk_traced () in
  populate sys "/d" 10;
  Ktrace.Recorder.clear rec_;
  do_ls sys "/d";
  let est = Ktrace.Savings.estimate rec_ in
  (* 1 readdir + 10 stats -> 1 readdirplus: 10 crossings saved *)
  Alcotest.(check int) "before" 11 est.Ktrace.Savings.syscalls_before;
  Alcotest.(check int) "after" 1 est.Ktrace.Savings.syscalls_after;
  Alcotest.(check int) "crossings saved" 10 est.Ktrace.Savings.crossings_saved;
  Alcotest.(check bool) "bytes shrink" true
    (est.Ktrace.Savings.bytes_after < est.Ktrace.Savings.bytes_before);
  Alcotest.(check bool) "cycles saved" true (est.Ktrace.Savings.cycles_saved > 0)

let test_savings_orc () =
  let _, sys, rec_ = mk_traced () in
  populate sys "/d" 2;
  Ktrace.Recorder.clear rec_;
  for _ = 1 to 5 do
    let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/d/f0" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
    ignore (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:8));
    ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))
  done;
  let est = Ktrace.Savings.estimate rec_ in
  Alcotest.(check int) "15 calls before" 15 est.Ktrace.Savings.syscalls_before;
  Alcotest.(check int) "5 after" 5 est.Ktrace.Savings.syscalls_after

let test_savings_rate () =
  let _, sys, rec_ = mk_traced () in
  populate sys "/d" 5;
  Ktrace.Recorder.clear rec_;
  do_ls sys "/d";
  let est =
    Ktrace.Savings.estimate ~trace_duration_cycles:1_700_000_000 rec_
  in
  (* with a 1s trace the saved seconds/hour must be positive and finite *)
  Alcotest.(check bool) "seconds/hour positive" true
    (est.Ktrace.Savings.seconds_saved_per_hour > 0.);
  Alcotest.(check bool) "seconds/hour sane" true
    (est.Ktrace.Savings.seconds_saved_per_hour < 3600.)

let () =
  Alcotest.run "ktrace"
    [
      ( "recorder",
        [ Alcotest.test_case "records" `Quick test_recorder ] );
      ("graph", [ Alcotest.test_case "weights+paths" `Quick test_graph ]);
      ("patterns", [ Alcotest.test_case "mining" `Quick test_patterns ]);
      ( "savings",
        [
          Alcotest.test_case "readdirplus" `Quick test_savings;
          Alcotest.test_case "open-read-close" `Quick test_savings_orc;
          Alcotest.test_case "per hour" `Quick test_savings_rate;
        ] );
    ]
