(* Tests for the kperf tracer: ring overflow in both modes, span
   nesting/parenting across a kring batch, byte-identical determinism of
   the exporters across two fixed-seed runs, round-trip parsing of the
   Chrome trace_event export — and the contract everything leans on:
   tracing disabled costs zero simulated cycles. *)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let clock = ref 0

let mk ?(mode = Kperf.Overwrite) ?(ring_capacity = 8) () =
  clock := 0;
  Kperf.create ~enabled:true ~mode ~ring_capacity
    ~now:(fun () -> !clock)
    ()

let tick () = incr clock

(* --- ring overflow ------------------------------------------------------ *)

let test_overflow_overwrite () =
  let t = mk ~mode:Kperf.Overwrite ~ring_capacity:4 () in
  for i = 1 to 10 do
    tick ();
    Kperf.instant t ~arg:i ~cat:"t" ~name:"x" ()
  done;
  Alcotest.(check int) "emitted" 10 (Kperf.emitted t);
  Alcotest.(check int) "overwritten" 6 (Kperf.overwritten t);
  Alcotest.(check int) "drops" 0 (Kperf.drops t);
  let evs = Kperf.events t in
  Alcotest.(check int) "retained" 4 (List.length evs);
  (* overwrite keeps the newest *)
  Alcotest.(check (list int)) "newest survive" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Kperf.ev_arg) evs)

let test_overflow_drop () =
  let t = mk ~mode:Kperf.Drop ~ring_capacity:4 () in
  for i = 1 to 10 do
    tick ();
    Kperf.instant t ~arg:i ~cat:"t" ~name:"x" ()
  done;
  Alcotest.(check int) "emitted" 10 (Kperf.emitted t);
  Alcotest.(check int) "drops" 6 (Kperf.drops t);
  Alcotest.(check int) "overwritten" 0 (Kperf.overwritten t);
  let evs = Kperf.events t in
  (* drop keeps the oldest *)
  Alcotest.(check (list int)) "oldest survive" [ 1; 2; 3; 4 ]
    (List.map (fun e -> e.Kperf.ev_arg) evs)

let test_overflow_kstats () =
  let stats = Kstats.create ~enabled:true () in
  let t =
    Kperf.create ~enabled:true ~mode:Kperf.Drop ~ring_capacity:2 ~stats ()
  in
  for _ = 1 to 5 do
    Kperf.instant t ~cat:"t" ~name:"x" ()
  done;
  let counter name =
    match Kstats.find stats name with
    | Some (Kstats.Counter_v n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "kperf.events" 5 (counter "kperf.events");
  Alcotest.(check int) "kperf.ring.drops" 3 (counter "kperf.ring.drops")

(* --- span structure ----------------------------------------------------- *)

let test_nesting () =
  let t = mk ~ring_capacity:64 () in
  tick ();
  let outer = Kperf.span_begin t ~cat:"a" ~name:"outer" () in
  tick ();
  let inner = Kperf.span_begin t ~cat:"a" ~name:"inner" () in
  Alcotest.(check int) "current is inner" inner (Kperf.current_span t);
  tick ();
  Kperf.span_end t inner;
  tick ();
  Kperf.span_end t outer;
  let evs = Kperf.events t in
  let begin_of name =
    List.find
      (fun e -> e.Kperf.ev_kind = Kperf.Begin && e.Kperf.ev_name = name)
      evs
  in
  Alcotest.(check int) "outer is root" 0 (begin_of "outer").Kperf.ev_parent;
  Alcotest.(check int) "inner child of outer" outer
    (begin_of "inner").Kperf.ev_parent;
  (* folded: the inner span's cycles are attributed to the full path *)
  let folded = Kperf.folded t in
  Alcotest.(check bool) "nested path present" true
    (contains folded "a:outer;a:inner 1")

(* Spans survive the syscall boundary: every syscall dispatched from a
   drained kring batch must be parented (directly or transitively) to
   the batch's one ring:enter span. *)
let test_kring_batch_parenting () =
  Kperf.default_enabled := true;
  Fun.protect ~finally:(fun () -> Kperf.default_enabled := false)
  @@ fun () ->
  let t = Core.boot_with Core.Config.default in
  let ring = Core.ring t in
  let reqs =
    [
      Core.Req.Mkdir { path = "/d" };
      Core.Req.Open { path = "/d/f"; flags = Core.o_create };
      Core.Req.Getpid;
    ]
  in
  let completions = Kring.run_batch ring reqs in
  Alcotest.(check int) "all completed" 3 (List.length completions);
  let evs = Kperf.events (Core.perf t) in
  let enters =
    List.filter
      (fun e ->
        e.Kperf.ev_kind = Kperf.Begin
        && e.Kperf.ev_cat = "ring" && e.Kperf.ev_name = "enter")
      evs
  in
  Alcotest.(check int) "one batch, one enter span" 1 (List.length enters);
  let enter_id = (List.hd enters).Kperf.ev_id in
  let syscall_begins =
    List.filter
      (fun e -> e.Kperf.ev_kind = Kperf.Begin && e.Kperf.ev_cat = "syscall")
      evs
  in
  Alcotest.(check bool) "batch dispatched syscalls" true
    (List.length syscall_begins >= 3);
  (* every syscall span reaches ring:enter through its parent chain *)
  let parent_of id =
    List.find_map
      (fun e ->
        if e.Kperf.ev_kind = Kperf.Begin && e.Kperf.ev_id = id then
          Some e.Kperf.ev_parent
        else None)
      evs
  in
  List.iter
    (fun e ->
      let rec reaches id =
        id = enter_id
        || (id <> 0 && match parent_of id with Some p -> reaches p | None -> false)
      in
      Alcotest.(check bool)
        (Printf.sprintf "syscall %s under ring:enter" e.Kperf.ev_name)
        true
        (reaches e.Kperf.ev_parent))
    syscall_begins

(* --- determinism -------------------------------------------------------- *)

let traced_postmark () =
  Kperf.default_enabled := true;
  Fun.protect ~finally:(fun () -> Kperf.default_enabled := false)
  @@ fun () ->
  let t = Core.boot_with Core.Config.default in
  let cfg =
    { Workloads.Postmark.default_config with files = 20; transactions = 60 }
  in
  ignore (Workloads.Postmark.run ~config:cfg (Core.sys t));
  let perf = Core.perf t in
  (Ksim.Kernel.now (Core.kernel t), Kperf.folded perf, Kperf.chrome_json perf)

let test_determinism () =
  let cy1, folded1, chrome1 = traced_postmark () in
  let cy2, folded2, chrome2 = traced_postmark () in
  Alcotest.(check int) "cycles identical" cy1 cy2;
  Alcotest.(check string) "folded byte-identical" folded1 folded2;
  Alcotest.(check string) "chrome byte-identical" chrome1 chrome2;
  Alcotest.(check bool) "trace nonempty" true (String.length folded1 > 0)

(* Tracing disabled must not move the simulated clock by one cycle. *)
let test_disabled_is_free () =
  let run ~trace =
    let t = Core.boot_with { Core.Config.default with trace = Some trace } in
    let cfg =
      { Workloads.Postmark.default_config with files = 20; transactions = 60 }
    in
    ignore (Workloads.Postmark.run ~config:cfg (Core.sys t));
    (Ksim.Kernel.now (Core.kernel t), Kperf.emitted (Core.perf t))
  in
  let cy_off, emitted_off = run ~trace:false in
  let cy_off2, _ = run ~trace:false in
  let cy_on, emitted_on = run ~trace:true in
  Alcotest.(check int) "untraced runs bit-for-bit" cy_off cy_off2;
  Alcotest.(check int) "disabled emits nothing" 0 emitted_off;
  Alcotest.(check bool) "enabled emits" true (emitted_on > 0);
  Alcotest.(check bool) "enabled costs cycles (charged, not free)" true
    (cy_on > cy_off);
  (* ... but bounded: the emit hooks stay under 2% even on a metadata
     workload where syscalls are cheap *)
  Alcotest.(check bool) "enabled overhead under 2%" true
    (float_of_int (cy_on - cy_off) /. float_of_int cy_off < 0.02)

(* --- Chrome export round-trip ------------------------------------------- *)

let test_chrome_roundtrip () =
  let t = mk ~ring_capacity:64 () in
  tick ();
  let s = Kperf.span_begin t ~pid:7 ~arg:42 ~cat:"c\"at" ~name:"sp\\an" () in
  tick ();
  Kperf.instant t ~cat:"i" ~name:"mark" ();
  let a = Kperf.async_begin t ~cat:"net" ~name:"req" () in
  tick ();
  Kperf.async_end t a;
  Kperf.span_end t ~arg:43 s;
  let evs = Kperf.events t in
  let json = Kperf.chrome_of_events ~ncpus:1 evs in
  let back = Kperf.events_of_chrome json in
  Alcotest.(check int) "same event count" (List.length evs) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d survives" a.Kperf.ev_seq)
        true
        (a.Kperf.ev_kind = b.Kperf.ev_kind
        && a.Kperf.ev_id = b.Kperf.ev_id
        && a.Kperf.ev_parent = b.Kperf.ev_parent
        && a.Kperf.ev_cat = b.Kperf.ev_cat
        && a.Kperf.ev_name = b.Kperf.ev_name
        && a.Kperf.ev_ts = b.Kperf.ev_ts
        && a.Kperf.ev_pid = b.Kperf.ev_pid
        && a.Kperf.ev_arg = b.Kperf.ev_arg))
    evs back;
  (* and the derived views agree *)
  Alcotest.(check string) "folded identical through round-trip"
    (Kperf.fold_events evs) (Kperf.fold_events back)

let test_json_parser () =
  let open Kperf.Json in
  (match parse {| {"a": [1, -2.5, "xA\n", true, null], "b": {}} |} with
  | Obj [ ("a", Arr [ Num 1.; Num -2.5; Str "xA\n"; Bool true; Null ]);
          ("b", Obj []) ] -> ()
  | _ -> Alcotest.fail "unexpected parse");
  (match parse "[1, 2" with
  | exception Parse_error _ -> ()
  | _ -> Alcotest.fail "unterminated array should fail");
  match parse {| {"a":1} trailing |} with
  | exception Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage should fail"

(* --- kmonitor bridge ----------------------------------------------------- *)

let test_perf_bridge () =
  Kperf.default_enabled := true;
  Fun.protect ~finally:(fun () -> Kperf.default_enabled := false)
  @@ fun () ->
  let t = Core.boot_with Core.Config.default in
  let d = Core.enable_monitoring t in
  let bridge = Core.perf_feed t in
  let seen = ref 0 in
  Kmonitor.Dispatcher.register d ~name:"count" (fun ev ->
      match ev.Ksim.Instrument.kind with
      | Ksim.Instrument.Custom k
        when k = Kmonitor.Perf_bridge.span_begin_kind
             || k = Kmonitor.Perf_bridge.span_end_kind ->
          incr seen
      | _ -> ());
  let sys = Core.sys t in
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/f" ~flags:Core.o_create) in
  Core.ok (Core.Syscall.sys_close sys ~fd);
  Alcotest.(check bool) "spans mirrored into the event stream" true
    (!seen > 0 && Kmonitor.Perf_bridge.mirrored bridge = !seen);
  Kmonitor.Perf_bridge.detach bridge;
  let before = !seen in
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/g" ~flags:Core.o_create) in
  Core.ok (Core.Syscall.sys_close sys ~fd);
  Alcotest.(check int) "detach stops the mirror" before !seen

let () =
  Alcotest.run "kperf"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow overwrite" `Quick test_overflow_overwrite;
          Alcotest.test_case "overflow drop" `Quick test_overflow_drop;
          Alcotest.test_case "overflow kstats" `Quick test_overflow_kstats;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "kring batch parenting" `Quick
            test_kring_batch_parenting;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical exports" `Quick test_determinism;
          Alcotest.test_case "disabled is free" `Quick test_disabled_is_free;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome roundtrip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parser;
          Alcotest.test_case "kmonitor bridge" `Quick test_perf_bridge;
        ] );
    ]
