(* knet: the simulated socket layer — listening sockets and backlogs,
   bounded per-connection buffers, level-triggered epoll readiness,
   blocking waits that ride the traffic-generator event heap, and the
   syscall-boundary plumbing (fd mapping, sendfile-to-socket). *)

let errno = Alcotest.testable Kvfs.Vtypes.pp_errno ( = )

let find_counter stats name =
  match Kstats.find stats name with Some (Kstats.Counter_v v) -> v | _ -> 0

(* A fresh stack on a bare kernel, small buffers so backpressure is easy
   to reach. *)
let bare ?rcvbuf ?sndbuf () =
  let kernel = Ksim.Kernel.create () in
  Kstats.set_enabled (Ksim.Kernel.stats kernel) true;
  (kernel, Knet.create ?rcvbuf ?sndbuf kernel)

let listener ?(port = 80) ?(backlog = 4) net =
  let s = Knet.socket net in
  (match Knet.bind net ~sock:s ~port with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bind: %s" (Kvfs.Vtypes.errno_to_string e));
  (match Knet.listen net ~sock:s ~backlog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "listen: %s" (Kvfs.Vtypes.errno_to_string e));
  s

(* --- sockets and connections -------------------------------------------- *)

let test_accept_recv_send () =
  let _kernel, net = bare () in
  let s = listener net in
  Alcotest.(check (result int errno))
    "accept on empty backlog" (Error Kvfs.Vtypes.EAGAIN)
    (Knet.accept net ~sock:s);
  let cl = Option.get (Knet.inject_connect net ~port:80) in
  let conn =
    match Knet.accept net ~sock:s with
    | Ok c -> c
    | Error e -> Alcotest.failf "accept: %s" (Kvfs.Vtypes.errno_to_string e)
  in
  Alcotest.(check int) "accept pops the injected connection" cl conn;
  Alcotest.(check (result bytes errno))
    "recv before any bytes" (Error Kvfs.Vtypes.EAGAIN)
    (Knet.recv net ~sock:conn ~len:64);
  Alcotest.(check int) "inject fits" 5 (Knet.inject_bytes net ~sock:conn "hello");
  Alcotest.(check (result bytes errno))
    "recv returns the bytes"
    (Ok (Bytes.of_string "hello"))
    (Knet.recv net ~sock:conn ~len:64);
  (match Knet.send net ~sock:conn ~data:(Bytes.of_string "world") with
  | Ok 5 -> ()
  | _ -> Alcotest.fail "send should queue all 5 bytes");
  Knet.inject_fin net ~sock:conn;
  Alcotest.(check (result bytes errno))
    "recv after FIN and drain is end-of-stream" (Ok Bytes.empty)
    (Knet.recv net ~sock:conn ~len:64)

let test_bind_errors () =
  let _kernel, net = bare () in
  let _s = listener ~port:80 net in
  let s2 = Knet.socket net in
  Alcotest.(check (result unit errno))
    "port already taken" (Error Kvfs.Vtypes.EADDRINUSE)
    (Knet.bind net ~sock:s2 ~port:80);
  Alcotest.(check (result unit errno))
    "bind on a bad id" (Error Kvfs.Vtypes.EBADF)
    (Knet.bind net ~sock:9999 ~port:81)

let test_backlog_drops () =
  let kernel, net = bare () in
  let _s = listener ~port:80 ~backlog:2 net in
  Alcotest.(check bool) "first fits" true
    (Knet.inject_connect net ~port:80 <> None);
  Alcotest.(check bool) "second fits" true
    (Knet.inject_connect net ~port:80 <> None);
  Alcotest.(check (option int)) "third overflows the backlog" None
    (Knet.inject_connect net ~port:80);
  Alcotest.(check int) "drop counted" 1
    (find_counter (Ksim.Kernel.stats kernel) "net.backlog_drops")

let test_bounded_sendq () =
  let kernel, net = bare ~sndbuf:8 () in
  let s = listener net in
  let _cl = Knet.inject_connect net ~port:80 in
  let conn = Result.get_ok (Knet.accept net ~sock:s) in
  (match Knet.send net ~sock:conn ~data:(Bytes.make 16 'x') with
  | Ok 8 -> ()
  | Ok n -> Alcotest.failf "partial send took %d, want 8" n
  | Error e -> Alcotest.failf "send: %s" (Kvfs.Vtypes.errno_to_string e));
  Alcotest.(check (result int errno))
    "full queue would block" (Error Kvfs.Vtypes.ENOBUFS)
    (Knet.send net ~sock:conn ~data:(Bytes.of_string "y"));
  Alcotest.(check bool) "sendq_full counted" true
    (find_counter (Ksim.Kernel.stats kernel) "net.sendq_full" >= 1);
  Alcotest.(check (result int errno)) "no space left" (Ok 0)
    (Knet.send_space net ~sock:conn)

(* --- epoll --------------------------------------------------------------- *)

let test_epoll_level_triggered () =
  let _kernel, net = bare () in
  let s = listener net in
  let ep = Knet.epoll_create net in
  (match
     Knet.epoll_ctl net ~ep ~sock:s ~op:(`Add (Knet.ep_in, 1000))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "epoll_ctl: %s" (Kvfs.Vtypes.errno_to_string e));
  let cl = Option.get (Knet.inject_connect net ~port:80) in
  Alcotest.(check (result (list (pair int int)) errno))
    "pending accept is readable"
    (Ok [ (1000, Knet.ep_in) ])
    (Knet.epoll_wait net ~ep ~max:8);
  Alcotest.(check (result (list (pair int int)) errno))
    "level-triggered: still readable until consumed"
    (Ok [ (1000, Knet.ep_in) ])
    (Knet.epoll_wait net ~ep ~max:8);
  let conn = Result.get_ok (Knet.accept net ~sock:s) in
  Alcotest.(check int) "same connection" cl conn;
  Alcotest.(check (result (list (pair int int)) errno))
    "consumed: nothing ready, heap empty" (Ok [])
    (Knet.epoll_wait net ~ep ~max:8);
  ignore (Knet.inject_bytes net ~sock:conn "r");
  (match
     Knet.epoll_ctl net ~ep ~sock:conn
       ~op:(`Add (Knet.ep_in lor Knet.ep_out, 2000))
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "epoll_ctl: %s" (Kvfs.Vtypes.errno_to_string e));
  (match Knet.epoll_wait net ~ep ~max:8 with
  | Ok [ (2000, m) ] ->
      Alcotest.(check bool) "readable" true (m land Knet.ep_in <> 0);
      Alcotest.(check bool) "writable" true (m land Knet.ep_out <> 0)
  | Ok l -> Alcotest.failf "want one ready socket, got %d" (List.length l)
  | Error e -> Alcotest.failf "epoll_wait: %s" (Kvfs.Vtypes.errno_to_string e));
  Knet.inject_fin net ~sock:conn;
  ignore (Result.get_ok (Knet.recv net ~sock:conn ~len:8));
  (match Knet.epoll_wait net ~ep ~max:8 with
  | Ok [ (2000, m) ] ->
      Alcotest.(check bool) "HUP delivered even when unrequested" true
        (m land Knet.ep_hup <> 0)
  | Ok _ | Error _ -> Alcotest.fail "want HUP readiness")

let test_epoll_wait_blocks_until_traffic () =
  let t = Core.boot_with Core.Config.default in
  Kstats.set_enabled (Core.stats t) true;
  let kernel = Core.kernel t in
  let net = Core.net t in
  let s = listener ~port:80 net in
  let ep = Knet.epoll_create net in
  ignore (Knet.epoll_ctl net ~ep ~sock:s ~op:(`Add (Knet.ep_in, 1)));
  Knet.Traffic.install net
    { Knet.Traffic.default with port = 80; conns = 1; requests_per_conn = 1;
      start = 50_000 };
  let before = Ksim.Kernel.now kernel in
  (match Knet.epoll_wait net ~ep ~max:4 with
  | Ok [ (1, _) ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "want the listener ready after blocking");
  Alcotest.(check bool) "clock advanced to the connect event" true
    (Ksim.Kernel.now kernel - before >= 50_000);
  Alcotest.(check bool) "wakeup counted" true
    (find_counter (Core.stats t) "net.epoll.wakeups" >= 1)

(* --- the syscall boundary ------------------------------------------------ *)

(* Kproc.lookup_fd maps a socket fd to handle_base + id; recover the raw
   id for NIC-side injection the way the service routines do. *)
let sock_id sys fd =
  match
    Ksim.Kproc.lookup_fd (Ksim.Kernel.current (Ksyscall.Systable.kernel sys)) fd
  with
  | Some h when h >= Knet.handle_base -> h - Knet.handle_base
  | _ -> Alcotest.fail "fd is not a socket"

let test_syscall_fd_mapping () =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let net = Core.net t in
  let s = Core.Syscall.sys_socket sys in
  Alcotest.(check (result unit errno)) "bind via syscall" (Ok ())
    (Core.Syscall.sys_bind sys ~sock:s ~port:80);
  Alcotest.(check (result unit errno)) "listen via syscall" (Ok ())
    (Core.Syscall.sys_listen sys ~sock:s ~backlog:4);
  (* a VFS fd is not a socket, and a socket is not a VFS fd *)
  let file =
    Core.ok (Core.Syscall.sys_open sys ~path:"/f" ~flags:Core.o_create)
  in
  Alcotest.(check (result bytes errno))
    "recv on a file" (Error Kvfs.Vtypes.ENOTSOCK)
    (Core.Syscall.sys_recv sys ~sock:file ~len:8);
  Alcotest.(check (result bytes errno))
    "read on a socket" (Error Kvfs.Vtypes.EBADF)
    (Core.Syscall.sys_read sys ~fd:s ~len:8);
  ignore (Knet.inject_connect net ~port:80);
  let conn = Core.ok (Core.Syscall.sys_accept sys ~sock:s) in
  ignore (Knet.inject_bytes net ~sock:(sock_id sys conn) "ping");
  Alcotest.(check (result bytes errno))
    "recv via syscall"
    (Ok (Bytes.of_string "ping"))
    (Core.Syscall.sys_recv sys ~sock:conn ~len:64)

let test_close_releases_socket () =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let net = Core.net t in
  let s = Core.Syscall.sys_socket sys in
  ignore (Core.Syscall.sys_bind sys ~sock:s ~port:80);
  ignore (Core.Syscall.sys_listen sys ~sock:s ~backlog:4);
  ignore (Knet.inject_connect net ~port:80);
  let conn = Core.ok (Core.Syscall.sys_accept sys ~sock:s) in
  Alcotest.(check (result unit errno)) "close the connection" (Ok ())
    (Core.Syscall.sys_close sys ~fd:conn);
  Alcotest.(check (result bytes errno))
    "closed fd is gone" (Error Kvfs.Vtypes.EBADF)
    (Core.Syscall.sys_recv sys ~sock:conn ~len:8);
  Alcotest.(check (result unit errno)) "close the listener" (Ok ())
    (Core.Syscall.sys_close sys ~fd:s);
  Alcotest.(check (option int)) "port released: connects are refused" None
    (Knet.inject_connect net ~port:80)

let test_sendfile_sock_zero_copy () =
  let t = Core.boot_with Core.Config.default in
  Kstats.set_enabled (Core.stats t) true;
  let sys = Core.sys t in
  let net = Core.net t in
  let kernel = Core.kernel t in
  let body = Bytes.init 1000 (fun i -> Char.chr (i mod 256)) in
  ignore
    (Core.ok
       (Core.Syscall.sys_open_write_close sys ~path:"/doc" ~data:body
          ~flags:Core.o_create));
  let s = Core.Syscall.sys_socket sys in
  ignore (Core.Syscall.sys_bind sys ~sock:s ~port:80);
  ignore (Core.Syscall.sys_listen sys ~sock:s ~backlog:4);
  ignore (Knet.inject_connect net ~port:80);
  let conn = Core.ok (Core.Syscall.sys_accept sys ~sock:s) in
  let fd = Core.ok (Core.Syscall.sys_open sys ~path:"/doc" ~flags:Core.o_rdonly) in
  let tu0 = Ksim.Kernel.bytes_to_user kernel in
  let fu0 = Ksim.Kernel.bytes_from_user kernel in
  Alcotest.(check (result int errno))
    "sendfile queues the whole document" (Ok 1000)
    (Core.Syscall.sys_sendfile_sock sys ~sock:conn ~fd ~off:0 ~len:2000);
  Alcotest.(check int) "no payload bytes copied to user space" 0
    (Ksim.Kernel.bytes_to_user kernel - tu0);
  Alcotest.(check int) "no payload bytes copied from user space" 0
    (Ksim.Kernel.bytes_from_user kernel - fu0);
  Alcotest.(check int) "counted as sendfile bytes" 1000
    (find_counter (Core.stats t) "net.sendfile.bytes");
  (* the payload really is queued: exactly 1000 bytes of send space gone *)
  Alcotest.(check (result int errno)) "payload occupies the send queue"
    (Ok 31768)
    (Knet.send_space net ~sock:(sock_id sys conn))

(* --- determinism --------------------------------------------------------- *)

let serve_once variant =
  let t = Core.boot_with Core.Config.default in
  let sys = Core.sys t in
  let kernel = Core.kernel t in
  let config =
    { Workloads.Webserver.net_default_config with variant; conns = 25 }
  in
  Workloads.Webserver.net_setup ~config sys;
  let r = Workloads.Webserver.run_net ~config sys in
  ( r.Workloads.Webserver.n_digest,
    r.Workloads.Webserver.n_completed,
    Ksim.Kernel.now kernel,
    Ksim.Kernel.crossings kernel )

let test_deterministic_replay () =
  List.iter
    (fun variant ->
      let d1, c1, now1, x1 = serve_once variant in
      let d2, c2, now2, x2 = serve_once variant in
      Alcotest.(check int) "all connections served" 25 c1;
      Alcotest.(check string) "same digest" d1 d2;
      Alcotest.(check int) "same completions" c1 c2;
      Alcotest.(check int) "same final clock" now1 now2;
      Alcotest.(check int) "same crossings" x1 x2)
    [ Workloads.Webserver.Net_naive; Workloads.Webserver.Net_ring ]

let () =
  Alcotest.run "knet"
    [
      ( "sockets",
        [
          Alcotest.test_case "accept/recv/send/fin" `Quick test_accept_recv_send;
          Alcotest.test_case "bind errors" `Quick test_bind_errors;
          Alcotest.test_case "backlog drops" `Quick test_backlog_drops;
          Alcotest.test_case "bounded send queue" `Quick test_bounded_sendq;
        ] );
      ( "epoll",
        [
          Alcotest.test_case "level-triggered readiness" `Quick
            test_epoll_level_triggered;
          Alcotest.test_case "blocking wait rides the event heap" `Quick
            test_epoll_wait_blocks_until_traffic;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "fd mapping and type errors" `Quick
            test_syscall_fd_mapping;
          Alcotest.test_case "close releases sockets and ports" `Quick
            test_close_releases_socket;
          Alcotest.test_case "sendfile-to-socket is zero-copy" `Quick
            test_sendfile_sock_zero_copy;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical runs replay bit-for-bit" `Quick
            test_deterministic_replay;
        ] );
    ]
