(* Tests for the syscall layer: boundary accounting, service routines,
   consolidated calls. *)

let mk_sys () =
  let kernel = Ksim.Kernel.create () in
  (kernel, Ksyscall.Systable.create kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected %a" Kvfs.Vtypes.pp_errno e

let test_open_read_write_close () =
  let _, sys = mk_sys () in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/f"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  Alcotest.(check bool) "fd >= 3" true (fd >= 3);
  let n = ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.of_string "payload")) in
  Alcotest.(check int) "wrote" 7 n;
  ignore (ok (Ksyscall.Usyscall.sys_lseek sys ~fd ~off:0 ~whence:Kvfs.Vfs.SEEK_SET));
  Alcotest.(check string) "read back" "payload"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:100)));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  match Ksyscall.Usyscall.sys_read sys ~fd ~len:1 with
  | Error Kvfs.Vtypes.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF"

let test_boundary_accounting () =
  let kernel, sys = mk_sys () in
  let c0 = Ksim.Kernel.crossings kernel in
  let b0 = Ksim.Kernel.bytes_from_user kernel in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/file"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.make 1000 'x')));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  Alcotest.(check int) "three crossings" 3 (Ksim.Kernel.crossings kernel - c0);
  (* path copied for open, data for write *)
  Alcotest.(check int) "bytes in" (6 + 1000)
    (Ksim.Kernel.bytes_from_user kernel - b0);
  (* reads copy out *)
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/file" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  let o0 = Ksim.Kernel.bytes_to_user kernel in
  ignore (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:400));
  Alcotest.(check int) "bytes out" 400 (Ksim.Kernel.bytes_to_user kernel - o0)

let test_mode_restored_on_error () =
  let kernel, sys = mk_sys () in
  (match Ksyscall.Usyscall.sys_open sys ~path:"/missing" ~flags:[ Kvfs.Vfs.O_RDONLY ] with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT");
  Alcotest.(check bool) "back in user mode" true
    (Ksim.Kernel.mode kernel = Ksim.Kernel.User)

let test_service_requires_kernel_mode () =
  let _, sys = mk_sys () in
  try
    ignore (Ksyscall.Sys_file.service_getpid sys);
    Alcotest.fail "expected mode violation"
  with Ksim.Kernel.Kernel_mode_violation _ -> ()

let test_getpid_and_counts () =
  let kernel, sys = mk_sys () in
  let pid = Ksyscall.Usyscall.sys_getpid sys in
  Alcotest.(check int) "init pid" 1 pid;
  let p = Ksim.Kernel.current kernel in
  Alcotest.(check bool) "syscall counted" true (p.Ksim.Kproc.syscalls >= 1);
  Alcotest.(check int) "table count" 1
    (Ksyscall.Systable.count sys Ksyscall.Sysno.Getpid)

let test_readdirplus_equivalence () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  for i = 0 to 4 do
    let path = Printf.sprintf "/d/f%d" i in
    ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path
                  ~data:(Bytes.make (10 * (i + 1)) 'a')
                  ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done;
  (* plain sequence *)
  let entries = ok (Ksyscall.Usyscall.sys_readdir sys ~path:"/d") in
  let plain =
    List.map
      (fun d ->
        let st = ok (Ksyscall.Usyscall.sys_stat sys ~path:("/d/" ^ d.Kvfs.Vtypes.d_name)) in
        (d.Kvfs.Vtypes.d_name, st.Kvfs.Vtypes.st_size))
      entries
  in
  (* consolidated *)
  let merged =
    List.map
      (fun (d, st) -> (d.Kvfs.Vtypes.d_name, st.Kvfs.Vtypes.st_size))
      (ok (Ksyscall.Usyscall.sys_readdirplus sys ~path:"/d"))
  in
  Alcotest.(check (list (pair string int))) "identical results" plain merged

let test_readdirplus_fewer_crossings () =
  let kernel, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/d"));
  for i = 0 to 9 do
    ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys
                  ~path:(Printf.sprintf "/d/f%d" i)
                  ~data:(Bytes.make 1 'x')
                  ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]))
  done;
  let c0 = Ksim.Kernel.crossings kernel in
  let entries = ok (Ksyscall.Usyscall.sys_readdir sys ~path:"/d") in
  List.iter
    (fun d -> ignore (ok (Ksyscall.Usyscall.sys_stat sys ~path:("/d/" ^ d.Kvfs.Vtypes.d_name))))
    entries;
  let plain_crossings = Ksim.Kernel.crossings kernel - c0 in
  let c1 = Ksim.Kernel.crossings kernel in
  ignore (ok (Ksyscall.Usyscall.sys_readdirplus sys ~path:"/d"));
  let merged_crossings = Ksim.Kernel.crossings kernel - c1 in
  Alcotest.(check int) "plain" 11 plain_crossings;
  Alcotest.(check int) "merged" 1 merged_crossings

let test_open_read_close () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/x"
                ~data:(Bytes.of_string "contents")
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  Alcotest.(check string) "read whole file" "contents"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_open_read_close sys ~path:"/x" ~maxlen:1000)));
  (* no descriptor leaks *)
  let kernel = Ksyscall.Systable.kernel sys in
  Alcotest.(check int) "no fds leaked" 0
    (Ksim.Kproc.open_fd_count (Ksim.Kernel.current kernel));
  match Ksyscall.Usyscall.sys_open_read_close sys ~path:"/none" ~maxlen:10 with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_open_fstat () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/y"
                ~data:(Bytes.make 123 'b')
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  let fd, st = ok (Ksyscall.Usyscall.sys_open_fstat sys ~path:"/y" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  Alcotest.(check int) "size" 123 st.Kvfs.Vtypes.st_size;
  (* the fd stays open and usable *)
  Alcotest.(check int) "readable" 123
    (Bytes.length (ok (Ksyscall.Usyscall.sys_read sys ~fd ~len:1000)));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))

let test_pread_pwrite () =
  let _, sys = mk_sys () in
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/p"
                 ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]) in
  ignore (ok (Ksyscall.Usyscall.sys_write sys ~fd ~data:(Bytes.of_string "0123456789")));
  ignore (ok (Ksyscall.Usyscall.sys_pwrite sys ~fd ~off:4 ~data:(Bytes.of_string "XY")));
  Alcotest.(check string) "pread" "3XY6"
    (Bytes.to_string (ok (Ksyscall.Usyscall.sys_pread sys ~fd ~off:3 ~len:4)));
  (* position unaffected by pread/pwrite *)
  Alcotest.(check int) "pos at end" 10
    (ok (Ksyscall.Usyscall.sys_lseek sys ~fd ~off:0 ~whence:Kvfs.Vfs.SEEK_CUR))

let test_rename_fsync () =
  let _, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/old"
                ~data:(Bytes.of_string "v") ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  ignore (ok (Ksyscall.Usyscall.sys_rename sys ~src:"/old" ~dst:"/new"));
  (match Ksyscall.Usyscall.sys_stat sys ~path:"/old" with
  | Error Kvfs.Vtypes.ENOENT -> ()
  | _ -> Alcotest.fail "old still there");
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/new" ~flags:[ Kvfs.Vfs.O_RDWR ]) in
  ignore (ok (Ksyscall.Usyscall.sys_fsync sys ~fd));
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd))

let test_sendfile () =
  let kernel, sys = mk_sys () in
  ignore (ok (Ksyscall.Usyscall.sys_open_write_close sys ~path:"/doc"
                ~data:(Bytes.make 10_000 'w')
                ~flags:[ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT ]));
  let fd = ok (Ksyscall.Usyscall.sys_open sys ~path:"/doc" ~flags:[ Kvfs.Vfs.O_RDONLY ]) in
  let out0 = Ksim.Kernel.bytes_to_user kernel in
  let n = ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:max_int) in
  Alcotest.(check int) "whole file sent" 10_000 n;
  (* the entire point: no data crossed into user space *)
  Alcotest.(check int) "zero copies out" 0 (Ksim.Kernel.bytes_to_user kernel - out0);
  (* partial range *)
  let n = ok (Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:9_000 ~len:5_000) in
  Alcotest.(check int) "tail clamped" 1_000 n;
  ignore (ok (Ksyscall.Usyscall.sys_close sys ~fd));
  match Ksyscall.Usyscall.sys_sendfile sys ~fd ~off:0 ~len:1 with
  | Error Kvfs.Vtypes.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF"

let test_tracer () =
  let _, sys = mk_sys () in
  let seen = ref [] in
  Ksyscall.Systable.set_tracer sys (fun r -> seen := r :: !seen);
  ignore (Ksyscall.Usyscall.sys_getpid sys);
  ignore (ok (Ksyscall.Usyscall.sys_mkdir sys ~path:"/t"));
  Ksyscall.Systable.clear_tracer sys;
  ignore (ok (Ksyscall.Usyscall.sys_stat sys ~path:"/t"));
  let names =
    List.rev_map
      (fun r -> Ksyscall.Sysno.to_string r.Ksyscall.Systable.sysno)
      !seen
  in
  Alcotest.(check (list string)) "traced while attached" [ "getpid"; "mkdir" ] names

(* --- typed descriptor wire codec ---------------------------------------- *)

let roundtrip req =
  let wire = Ksyscall.Syscall.encode_req req in
  let req', consumed = Ksyscall.Syscall.decode_req wire ~off:0 in
  req' = req && consumed = Bytes.length wire

(* One handcrafted example per syscall number, so every decoder arm is
   exercised deterministically. *)
let test_req_roundtrip_all_sysnos () =
  let open Ksyscall.Syscall in
  let examples =
    [
      Open { path = "/etc/motd"; flags = [ Kvfs.Vfs.O_RDONLY ] };
      Close { fd = 7 };
      Read { fd = 3; len = 4096 };
      Write { fd = 4; data = Bytes.of_string "payload\000with\255bytes" };
      Pread { fd = 5; off = 123; len = 17 };
      Pwrite { fd = 5; off = 0; data = Bytes.empty };
      Lseek { fd = 9; off = 1 lsl 40; whence = Kvfs.Vfs.SEEK_END };
      Stat { path = "/" };
      Fstat { fd = 0 };
      Readdir { path = "/usr/share" };
      Mkdir { path = "/tmp/x" };
      Unlink { path = "/tmp/x/y" };
      Rename { src = "/a"; dst = "/b" };
      Fsync { fd = 11 };
      Getpid;
      Readdirplus { path = "/home" };
      Open_read_close { path = "/cfg"; maxlen = 65536 };
      Open_write_close
        {
          path = "/out";
          data = Bytes.of_string "x";
          flags = [ Kvfs.Vfs.O_RDWR; Kvfs.Vfs.O_CREAT; Kvfs.Vfs.O_TRUNC ];
        };
      Sendfile { fd = 6; off = 8192; len = 1 lsl 20 };
      Open_fstat { path = "/lib"; flags = [ Kvfs.Vfs.O_RDONLY ] };
      Socket;
      Bind { sock = 3; port = 80 };
      Listen { sock = 3; backlog = 128 };
      Accept { sock = 3 };
      Recv { sock = 4; len = 4096 };
      Send { sock = 4; data = Bytes.of_string "HTTP/1.0 200\r\n\r\n" };
      Epoll_create;
      Epoll_ctl { ep = 5; sock = 4; add = true; mask = 3; cookie = 42 };
      Epoll_wait { ep = 5; max = 64 };
      Accept_recv { sock = 3; len = 512 };
      Recv_send { sock = 4; len = 512; data = Bytes.of_string "body" };
      Sendfile_sock { sock = 4; fd = 6; off = 0; len = 2048 };
    ]
  in
  (* the examples must cover the whole syscall table: adding a [Sysno.t]
     without a codec example here fails loudly, naming the stragglers *)
  let covered = List.sort_uniq compare (List.map sysno_of_req examples) in
  let missing =
    List.filter (fun s -> not (List.mem s covered)) Ksyscall.Sysno.all
  in
  Alcotest.(check (list string))
    "every sysno has a codec example" []
    (List.map Ksyscall.Sysno.to_string missing);
  List.iter
    (fun req ->
      Alcotest.(check bool)
        (Fmt.str "roundtrip %a" pp_req req)
        true (roundtrip req))
    examples

let gen_req =
  let open QCheck.Gen in
  let lc = map Char.chr (int_range 97 122) in
  let gen_path = map (fun s -> "/" ^ s) (string_size ~gen:lc (int_range 0 12)) in
  let gen_fd = int_range 0 1024 in
  let gen_len = int_range 0 1_000_000 in
  let gen_off = int_range 0 1_000_000 in
  let gen_data =
    map Bytes.of_string
      (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 64))
  in
  (* canonical flag lists only: the wire carries a bitmask, so a
     non-canonical ordering cannot survive; [flags_of_int] is the
     canonical form *)
  let gen_flags =
    map2
      (fun mode mods -> Ksyscall.Syscall.flags_of_int (mode lor (mods lsl 2)))
      (int_range 0 2) (int_range 0 7)
  in
  let gen_whence =
    oneofl [ Kvfs.Vfs.SEEK_SET; Kvfs.Vfs.SEEK_CUR; Kvfs.Vfs.SEEK_END ]
  in
  let open Ksyscall.Syscall in
  oneofl Ksyscall.Sysno.all >>= function
  | Ksyscall.Sysno.Open ->
      map2 (fun path flags -> Open { path; flags }) gen_path gen_flags
  | Ksyscall.Sysno.Close -> map (fun fd -> Close { fd }) gen_fd
  | Ksyscall.Sysno.Read ->
      map2 (fun fd len -> Read { fd; len }) gen_fd gen_len
  | Ksyscall.Sysno.Write ->
      map2 (fun fd data -> Write { fd; data }) gen_fd gen_data
  | Ksyscall.Sysno.Pread ->
      map3 (fun fd off len -> Pread { fd; off; len }) gen_fd gen_off gen_len
  | Ksyscall.Sysno.Pwrite ->
      map3 (fun fd off data -> Pwrite { fd; off; data }) gen_fd gen_off gen_data
  | Ksyscall.Sysno.Lseek ->
      map3 (fun fd off whence -> Lseek { fd; off; whence }) gen_fd gen_off
        gen_whence
  | Ksyscall.Sysno.Stat -> map (fun path -> Stat { path }) gen_path
  | Ksyscall.Sysno.Fstat -> map (fun fd -> Fstat { fd }) gen_fd
  | Ksyscall.Sysno.Readdir -> map (fun path -> Readdir { path }) gen_path
  | Ksyscall.Sysno.Mkdir -> map (fun path -> Mkdir { path }) gen_path
  | Ksyscall.Sysno.Unlink -> map (fun path -> Unlink { path }) gen_path
  | Ksyscall.Sysno.Rename ->
      map2 (fun src dst -> Rename { src; dst }) gen_path gen_path
  | Ksyscall.Sysno.Fsync -> map (fun fd -> Fsync { fd }) gen_fd
  | Ksyscall.Sysno.Getpid -> return Getpid
  | Ksyscall.Sysno.Readdirplus ->
      map (fun path -> Readdirplus { path }) gen_path
  | Ksyscall.Sysno.Open_read_close ->
      map2 (fun path maxlen -> Open_read_close { path; maxlen }) gen_path gen_len
  | Ksyscall.Sysno.Open_write_close ->
      map3
        (fun path data flags -> Open_write_close { path; data; flags })
        gen_path gen_data gen_flags
  | Ksyscall.Sysno.Sendfile ->
      map3 (fun fd off len -> Sendfile { fd; off; len }) gen_fd gen_off gen_len
  | Ksyscall.Sysno.Open_fstat ->
      map2 (fun path flags -> Open_fstat { path; flags }) gen_path gen_flags
  | Ksyscall.Sysno.Socket -> return Socket
  | Ksyscall.Sysno.Bind ->
      map2 (fun sock port -> Bind { sock; port }) gen_fd (int_range 1 65535)
  | Ksyscall.Sysno.Listen ->
      map2 (fun sock backlog -> Listen { sock; backlog }) gen_fd
        (int_range 1 4096)
  | Ksyscall.Sysno.Accept -> map (fun sock -> Accept { sock }) gen_fd
  | Ksyscall.Sysno.Recv ->
      map2 (fun sock len -> Recv { sock; len }) gen_fd gen_len
  | Ksyscall.Sysno.Send ->
      map2 (fun sock data -> Send { sock; data }) gen_fd gen_data
  | Ksyscall.Sysno.Epoll_create -> return Epoll_create
  | Ksyscall.Sysno.Epoll_ctl ->
      map3
        (fun ep sock (add, mask, cookie) ->
          Epoll_ctl { ep; sock; add; mask; cookie })
        gen_fd gen_fd
        (map3 (fun a m c -> (a, m, c)) bool (int_range 0 7) (int_range 0 1024))
  | Ksyscall.Sysno.Epoll_wait ->
      map2 (fun ep max -> Epoll_wait { ep; max }) gen_fd (int_range 1 1024)
  | Ksyscall.Sysno.Accept_recv ->
      map2 (fun sock len -> Accept_recv { sock; len }) gen_fd gen_len
  | Ksyscall.Sysno.Recv_send ->
      map3 (fun sock len data -> Recv_send { sock; len; data }) gen_fd gen_len
        gen_data
  | Ksyscall.Sysno.Sendfile_sock ->
      map2
        (fun (sock, fd) (off, len) -> Sendfile_sock { sock; fd; off; len })
        (map2 (fun a b -> (a, b)) gen_fd gen_fd)
        (map2 (fun a b -> (a, b)) gen_off gen_len)

let qcheck_req_roundtrip =
  QCheck.Test.make ~name:"req -> wire -> req" ~count:1000
    (QCheck.make
       ~print:(fun r -> Fmt.str "%a" Ksyscall.Syscall.pp_req r)
       gen_req)
    roundtrip

let () =
  Alcotest.run "ksyscall"
    [
      ( "basic",
        [
          Alcotest.test_case "open/read/write/close" `Quick test_open_read_write_close;
          Alcotest.test_case "boundary accounting" `Quick test_boundary_accounting;
          Alcotest.test_case "mode restored on error" `Quick test_mode_restored_on_error;
          Alcotest.test_case "service mode check" `Quick test_service_requires_kernel_mode;
          Alcotest.test_case "getpid/counts" `Quick test_getpid_and_counts;
          Alcotest.test_case "pread/pwrite" `Quick test_pread_pwrite;
          Alcotest.test_case "rename/fsync" `Quick test_rename_fsync;
          Alcotest.test_case "tracer" `Quick test_tracer;
        ] );
      ( "consolidated",
        [
          Alcotest.test_case "readdirplus equivalence" `Quick test_readdirplus_equivalence;
          Alcotest.test_case "readdirplus crossings" `Quick test_readdirplus_fewer_crossings;
          Alcotest.test_case "open_read_close" `Quick test_open_read_close;
          Alcotest.test_case "open_fstat" `Quick test_open_fstat;
          Alcotest.test_case "sendfile" `Quick test_sendfile;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "wire roundtrip, all sysnos" `Quick
            test_req_roundtrip_all_sysnos;
          QCheck_alcotest.to_alcotest qcheck_req_roundtrip;
        ] );
    ]
